//===- tests/gen/ScenarioGenTest.cpp - Scenario generator contract --------===//
//
// The generator's determinism contract (DESIGN.md §9): emitted source is
// a pure function of ScenarioOptions — byte-identical across calls — and
// every emitted module parses with a schema small enough for the
// exhaustive oracle. The CorpusGolden test extends the pin to the whole
// curated corpus: regenerating tests/corpus/ from its recorded options
// must reproduce the checked-in fixtures byte for byte.
//
//===----------------------------------------------------------------------===//

#include "gen/ScenarioGen.h"

#include "expr/Parser.h"
#include "gen/Corpus.h"
#include "gen/TraceGen.h"

#include "CorpusFixture.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace anosy;

namespace {

ScenarioOptions optionsFor(ScenarioFamily F, uint64_t Seed) {
  ScenarioOptions Opt;
  Opt.Family = F;
  Opt.Seed = Seed;
  return Opt;
}

std::vector<ScenarioFamily> allFamilies() {
  std::vector<ScenarioFamily> Fs;
  for (unsigned F = 0; F != NumScenarioFamilies; ++F)
    Fs.push_back(static_cast<ScenarioFamily>(F));
  return Fs;
}

} // namespace

TEST(ScenarioGen, SameOptionsSameBytes) {
  for (ScenarioFamily F : allFamilies()) {
    for (uint64_t Seed : {1, 42, 1000}) {
      GeneratedModule A = generateScenarioModule(optionsFor(F, Seed));
      GeneratedModule B = generateScenarioModule(optionsFor(F, Seed));
      EXPECT_EQ(A.Name, B.Name);
      EXPECT_EQ(A.Source, B.Source) << A.Name;
    }
  }
}

TEST(ScenarioGen, DifferentSeedsDiffer) {
  for (ScenarioFamily F : allFamilies()) {
    GeneratedModule A = generateScenarioModule(optionsFor(F, 1));
    GeneratedModule B = generateScenarioModule(optionsFor(F, 2));
    EXPECT_NE(A.Name, B.Name);
    EXPECT_NE(A.Source, B.Source) << scenarioFamilyName(F);
  }
}

TEST(ScenarioGen, EveryFamilyParsesWithinDomainBound) {
  for (ScenarioFamily F : allFamilies()) {
    for (uint64_t Seed : {1, 7, 99}) {
      ScenarioOptions Opt = optionsFor(F, Seed);
      GeneratedModule Mod = generateScenarioModule(Opt);
      auto M = parseModule(Mod.Source);
      ASSERT_TRUE(M.ok()) << Mod.Name << ": " << M.error().str() << "\n"
                          << Mod.Source;
      BigCount Size = M->schema().totalSize();
      ASSERT_TRUE(Size.fitsInt64()) << Mod.Name;
      EXPECT_LE(Size.toInt64(), Opt.MaxDomainSize) << Mod.Name;
      EXPECT_FALSE(M->queries().empty()) << Mod.Name;
    }
  }
}

TEST(ScenarioGen, RespectsTighterDomainBound) {
  for (ScenarioFamily F : allFamilies()) {
    ScenarioOptions Opt = optionsFor(F, 5);
    Opt.MaxDomainSize = 500;
    GeneratedModule Mod = generateScenarioModule(Opt);
    auto M = parseModule(Mod.Source);
    ASSERT_TRUE(M.ok()) << Mod.Name << ": " << M.error().str();
    BigCount Size = M->schema().totalSize();
    ASSERT_TRUE(Size.fitsInt64());
    EXPECT_LE(Size.toInt64(), 500) << Mod.Name;
  }
}

TEST(ScenarioGen, EmbedsLintPragmaAndName) {
  ScenarioOptions Opt = optionsFor(ScenarioFamily::Location, 42);
  Opt.PolicyMinSize = 17;
  GeneratedModule Mod = generateScenarioModule(Opt);
  EXPECT_EQ(Mod.Name, "location_s42");
  EXPECT_EQ(Mod.PolicyMinSize, 17);
  EXPECT_NE(Mod.Source.find("# anosy-lint: min-size=17"), std::string::npos)
      << Mod.Source;
}

TEST(ScenarioGen, FamilyNamesRoundTrip) {
  for (ScenarioFamily F : allFamilies()) {
    std::string Name = scenarioFamilyName(F);
    auto Back = scenarioFamilyByName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, F);
  }
  EXPECT_FALSE(scenarioFamilyByName("nonesuch").has_value());
}

TEST(ScenarioGen, CorpusIsDeterministic) {
  CorpusOptions Opt;
  Opt.Seed = 3;
  Opt.ModulesPerFamily = 1;
  Opt.MaxDomainSize = 2'000;
  auto A = generateCorpus(Opt);
  auto B = generateCorpus(Opt);
  ASSERT_TRUE(A.ok()) << A.error().str();
  ASSERT_TRUE(B.ok()) << B.error().str();
  ASSERT_EQ(A->Entries.size(), B->Entries.size());
  for (size_t I = 0; I != A->Entries.size(); ++I) {
    EXPECT_EQ(A->Entries[I].Mod.Source, B->Entries[I].Mod.Source);
    ASSERT_EQ(A->Entries[I].Traces.size(), B->Entries[I].Traces.size());
    for (size_t J = 0; J != A->Entries[I].Traces.size(); ++J)
      EXPECT_EQ(renderTrace(A->Entries[I].Traces[J]),
                renderTrace(B->Entries[I].Traces[J]));
  }
}

TEST(ScenarioGen, CorpusGrowthKeepsExistingEntries) {
  // Affine per-entry seeds: adding modules/traces must not perturb the
  // entries that already existed.
  CorpusOptions Small;
  Small.Seed = 11;
  Small.ModulesPerFamily = 1;
  Small.TracesPerModule = 1;
  Small.MaxDomainSize = 2'000;
  CorpusOptions Big = Small;
  Big.ModulesPerFamily = 2;
  Big.TracesPerModule = 2;
  auto A = generateCorpus(Small);
  auto B = generateCorpus(Big);
  ASSERT_TRUE(A.ok()) << A.error().str();
  ASSERT_TRUE(B.ok()) << B.error().str();
  std::map<std::string, std::string> BigModules, BigTraces;
  for (const CorpusEntry &E : B->Entries) {
    BigModules[E.Mod.Name] = E.Mod.Source;
    for (const GeneratedTrace &T : E.Traces)
      BigTraces[T.Name] = renderTrace(T);
  }
  for (const CorpusEntry &E : A->Entries) {
    ASSERT_TRUE(BigModules.count(E.Mod.Name)) << E.Mod.Name;
    EXPECT_EQ(BigModules[E.Mod.Name], E.Mod.Source);
    for (const GeneratedTrace &T : E.Traces) {
      ASSERT_TRUE(BigTraces.count(T.Name)) << T.Name;
      EXPECT_EQ(BigTraces[T.Name], renderTrace(T));
    }
  }
}

// Regenerating the curated corpus from its recorded options reproduces
// the checked-in fixtures byte for byte. If this fails after an
// intentional generator change, regenerate tests/corpus/ with the
// command in CorpusFixture.h and review the diff like any golden update.
TEST(ScenarioGen, CorpusGolden) {
  namespace fs = std::filesystem;
  fs::path Dir(ANOSY_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;

  auto C = generateCorpus(fixtureCorpusOptions());
  ASSERT_TRUE(C.ok()) << C.error().str();
  std::map<std::string, std::string> Expected;
  for (const CorpusEntry &E : C->Entries) {
    Expected[E.Mod.Name + ".anosy"] = E.Mod.Source;
    for (const GeneratedTrace &T : E.Traces)
      Expected[T.Name + ".trace"] = renderTrace(T);
  }

  size_t Seen = 0;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir)) {
    std::string File = DE.path().filename().string();
    std::string Ext = DE.path().extension().string();
    if (Ext != ".anosy" && Ext != ".trace")
      continue;
    ++Seen;
    auto It = Expected.find(File);
    ASSERT_TRUE(It != Expected.end())
        << File << " is checked in but not regenerated";
    std::ifstream In(DE.path(), std::ios::binary);
    ASSERT_TRUE(In.good()) << File;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    EXPECT_EQ(Buf.str(), It->second) << File << " drifted from generator";
  }
  EXPECT_EQ(Seen, Expected.size())
      << "fixture file count does not match the regenerated corpus";
}
