//===- tests/gen/OracleTest.cpp - Exhaustive oracle and lint score --------===//
//
// Ground truth on hand-checkable modules, the lint scorecard's soundness
// guarantee (precisions must be 1.0), and oracle-shadowed replays on
// small modules where every admitted answer, policy decision, and
// knowledge bound can be verified independently. The Regression suite
// pins seeds that exercised tricky paths while the harness was built.
//
//===----------------------------------------------------------------------===//

#include "gen/Oracle.h"

#include "expr/Parser.h"
#include "gen/Corpus.h"
#include "gen/ScenarioGen.h"
#include "support/FaultInjection.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Module tinyModule() {
  auto M = parseModule("secret S { x: int[0, 9] }\n"
                       "query high = x >= 5\n"
                       "query always = x >= 0\n"
                       "query never = x > 9\n");
  EXPECT_TRUE(M.ok()) << M.error().str();
  return *M;
}

GeneratedTrace sweepTrace(const Module &M, const TracePolicy &P,
                          const Point &Secret) {
  GeneratedTrace T;
  T.Name = "hand_sweep";
  T.ModuleName = "hand";
  T.Strategy = AttackerStrategy::Sweep;
  T.Seed = 1;
  T.Policy = P;
  T.Secrets = {Secret};
  for (const QueryDef &Q : M.queries())
    T.Steps.push_back({0, Q.Name});
  return T;
}

} // namespace

TEST(Oracle, GroundTruthCountsExactly) {
  Module M = tinyModule();
  GroundTruth GT = computeGroundTruth(M);
  EXPECT_EQ(GT.DomainSize, 10);
  const QueryTruth *High = GT.find("high");
  ASSERT_NE(High, nullptr);
  EXPECT_EQ(High->TrueCount, 5);
  EXPECT_EQ(High->FalseCount, 5);
  EXPECT_FALSE(High->constantAnswer());
  const QueryTruth *Always = GT.find("always");
  ASSERT_NE(Always, nullptr);
  EXPECT_EQ(Always->TrueCount, 10);
  EXPECT_EQ(Always->FalseCount, 0);
  EXPECT_TRUE(Always->constantAnswer());
  const QueryTruth *Never = GT.find("never");
  ASSERT_NE(Never, nullptr);
  EXPECT_EQ(Never->TrueCount, 0);
  EXPECT_TRUE(Never->constantAnswer());
  EXPECT_EQ(GT.find("ghost"), nullptr);
}

TEST(Oracle, RefusalForcedMatchesThreshold) {
  QueryTruth Q{"q", 5, 95};
  EXPECT_FALSE(Q.refusalForced(-1)); // Permissive: never forced.
  EXPECT_FALSE(Q.refusalForced(4));  // Both branches above 4.
  EXPECT_TRUE(Q.refusalForced(5));   // True branch is exactly 5: size > 5
                                     // fails for it (fig2 checks both).
  EXPECT_TRUE(Q.refusalForced(100));
}

TEST(Oracle, TracePolicyThresholds) {
  TracePolicy P;
  P.K = TracePolicy::Kind::Permissive;
  EXPECT_EQ(tracePolicyThreshold(P), -1);
  P.K = TracePolicy::Kind::MinSize;
  P.MinSize = 42;
  EXPECT_EQ(tracePolicyThreshold(P), 42);
  P.K = TracePolicy::Kind::MinEntropy;
  P.Bits = 3; // minEntropyPolicy publishes floor(2^3).
  EXPECT_EQ(tracePolicyThreshold(P), 8);
}

TEST(Oracle, PermissiveReplayAdmitsEverything) {
  Module M = tinyModule();
  TracePolicy P;
  P.K = TracePolicy::Kind::Permissive;
  GeneratedTrace T = sweepTrace(M, P, {7});
  ReplayResult R = replayWithOracle(M, T);
  EXPECT_TRUE(R.ok()) << (R.Mismatches.empty() ? "" : R.Mismatches[0]);
  EXPECT_EQ(R.Stats.Steps, 3u);
  EXPECT_EQ(R.Stats.Admitted, 3u);
  EXPECT_EQ(R.Stats.Refused, 0u);
  // x=7: high true, always true, never false.
  ASSERT_EQ(R.Outcomes.size(), 3u);
  EXPECT_EQ(R.Outcomes[0].Value, 1);
  EXPECT_EQ(R.Outcomes[1].Value, 1);
  EXPECT_EQ(R.Outcomes[2].Value, 0);
}

TEST(Oracle, MinSizeReplayRefusesSoundly) {
  Module M = tinyModule();
  TracePolicy P;
  P.K = TracePolicy::Kind::MinSize;
  P.MinSize = 6; // high splits 5/5: size > 6 fails ⇒ must refuse.
  GeneratedTrace T = sweepTrace(M, P, {7});
  ReplayResult R = replayWithOracle(M, T);
  EXPECT_TRUE(R.ok()) << (R.Mismatches.empty() ? "" : R.Mismatches[0]);
  EXPECT_GE(R.Stats.Refused, 1u);
  ASSERT_EQ(R.Outcomes.size(), 3u);
  EXPECT_FALSE(R.Outcomes[0].Admitted); // high: both branches too small.
}

TEST(Oracle, UnknownNamesAreCountedNotMismatched) {
  Module M = tinyModule();
  TracePolicy P;
  P.K = TracePolicy::Kind::Permissive;
  GeneratedTrace T = sweepTrace(M, P, {3});
  T.Steps.push_back({0, "ghost_query"});
  ReplayResult R = replayWithOracle(M, T);
  EXPECT_TRUE(R.ok()) << (R.Mismatches.empty() ? "" : R.Mismatches[0]);
  EXPECT_EQ(R.Stats.UnknownName, 1u);
}

TEST(Oracle, ClassifierReplayChecksOutputs) {
  auto M = parseModule("secret S { age: int[0, 99] }\n"
                       "query adult = age >= 18\n"
                       "classify band = if age < 18 then 0 else "
                       "if age < 65 then 1 else 2\n");
  ASSERT_TRUE(M.ok()) << M.error().str();
  GeneratedTrace T;
  T.Name = "hand_classify";
  T.ModuleName = "hand";
  T.Policy.K = TracePolicy::Kind::MinSize;
  T.Policy.MinSize = 8;
  T.Secrets = {{30}};
  T.Steps = {{0, "band"}, {0, "adult"}, {0, "band"}};
  ReplayResult R = replayWithOracle(*M, T);
  EXPECT_TRUE(R.ok()) << (R.Mismatches.empty() ? "" : R.Mismatches[0]);
  for (const StepOutcome &O : R.Outcomes)
    if (O.Admitted && !O.IsQuery)
      EXPECT_EQ(O.Value, 1); // age 30 is band 1.
}

TEST(Oracle, RejectsSecretsOutsideSchema) {
  Module M = tinyModule();
  TracePolicy P;
  P.K = TracePolicy::Kind::Permissive;
  GeneratedTrace T = sweepTrace(M, P, {1'000}); // x out of [0,9].
  ReplayResult R = replayWithOracle(M, T);
  EXPECT_FALSE(R.ok());
}

TEST(Oracle, LintScoreIsSoundOnEveryFamily) {
  for (unsigned F = 0; F != NumScenarioFamilies; ++F) {
    for (uint64_t Seed : {1, 2}) {
      ScenarioOptions Opt;
      Opt.Family = static_cast<ScenarioFamily>(F);
      Opt.Seed = Seed;
      Opt.MaxDomainSize = 2'000;
      GeneratedModule Mod = generateScenarioModule(Opt);
      auto M = parseModule(Mod.Source);
      ASSERT_TRUE(M.ok()) << Mod.Name;
      GroundTruth GT = computeGroundTruth(*M);
      LintScore S = scoreLint(*M, Mod.PolicyMinSize, GT);
      EXPECT_TRUE(S.sound())
          << Mod.Name << ": const FP " << S.ConstFP << ", reject FP "
          << S.RejectFP;
      EXPECT_EQ(S.QueriesScored, M->queries().size()) << Mod.Name;
    }
  }
}

TEST(Oracle, LintScoreFindsPlantedVerdicts) {
  // `never` is constant (lint catches x > 9 by interval arithmetic);
  // `narrow` keeps one point on the true branch, forcing refusal at
  // k = 8 and statically provably so.
  auto M = parseModule("secret S { x: int[0, 99] }\n"
                       "query never = x > 99\n"
                       "query narrow = x >= 99\n"
                       "query wide = x >= 50\n");
  ASSERT_TRUE(M.ok()) << M.error().str();
  GroundTruth GT = computeGroundTruth(*M);
  LintScore S = scoreLint(*M, 8, GT);
  EXPECT_TRUE(S.sound());
  EXPECT_GE(S.ConstTP, 1u);  // never
  EXPECT_GE(S.RejectTP, 1u); // narrow
  EXPECT_EQ(S.ConstFP, 0u);
  EXPECT_EQ(S.RejectFP, 0u);
}

TEST(Oracle, MergeAccumulates) {
  LintScore A, B;
  A.ConstTP = 1;
  A.QueriesScored = 3;
  B.RejectFN = 2;
  B.QueriesScored = 4;
  A.merge(B);
  EXPECT_EQ(A.ConstTP, 1u);
  EXPECT_EQ(A.RejectFN, 2u);
  EXPECT_EQ(A.QueriesScored, 7u);
}

// Found by `anosy_gen faults --seed 1 --scenarios 2000` (scenario 83):
// with the fault harness still armed, reloading an exported knowledge
// base re-verifies every record, and an injected undecided obligation
// makes the reload re-synthesize degraded ind. sets. The oracle's strict
// round-trip equality check must not fire on that legitimate degradation
// — it applies to fault-free replays only.
TEST(Oracle, KbRoundTripCheckToleratesArmedFaults) {
  ScenarioOptions Opt;
  Opt.Family = static_cast<ScenarioFamily>(83 % NumScenarioFamilies);
  Opt.Seed = 83;
  Opt.MaxDomainSize = 2'000;
  GeneratedModule Mod = generateScenarioModule(Opt);
  auto M = parseModule(Mod.Source);
  ASSERT_TRUE(M.ok()) << Mod.Name;
  TracePolicy Policy;
  Policy.MinSize = Opt.PolicyMinSize;
  GeneratedTrace T = generateTrace(
      *M, Mod.Name,
      static_cast<AttackerStrategy>((83 / 3) % NumAttackerStrategies),
      Policy, 83, 8);

  // The scenario-83 configuration, re-derived exactly as the sweep does.
  Rng R(83 ^ 0xfa017ULL);
  FaultConfig FC;
  FC.Seed = 83;
  bool Any = false;
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    if (R.range(0, 2) == 0)
      continue;
    FC.Sites[S].OneIn = static_cast<uint64_t>(1) << R.range(0, 6);
    FC.Sites[S].MaxFaults = static_cast<uint64_t>(R.range(0, 3));
    Any = true;
  }
  if (!Any)
    FC.Sites[static_cast<unsigned>(FaultSite::SolverCharge)].OneIn = 4;

  faults::configure(FC);
  ReplayResult Replay = replayWithOracle(*M, T, {}, /*CheckKbRoundTrip=*/true);
  faults::reset();
  EXPECT_TRUE(Replay.ok())
      << (Replay.Mismatches.empty() ? "" : Replay.Mismatches[0]);
}

// Seeds that exercised tricky paths while the harness was built: each of
// these replays end-to-end (session, oracle shadow, KB round-trip) and
// must stay mismatch-free. If one regresses, the mismatch string names
// the step and check that broke.
struct RegressionCase {
  ScenarioFamily Family;
  uint64_t ModuleSeed;
  AttackerStrategy Strategy;
  TracePolicy::Kind Policy;
  uint64_t TraceSeed;
};

class OracleRegression
    : public ::testing::TestWithParam<RegressionCase> {};

TEST_P(OracleRegression, ReplaysClean) {
  const RegressionCase &C = GetParam();
  ScenarioOptions Opt;
  Opt.Family = C.Family;
  Opt.Seed = C.ModuleSeed;
  Opt.MaxDomainSize = 2'000;
  GeneratedModule Mod = generateScenarioModule(Opt);
  auto M = parseModule(Mod.Source);
  ASSERT_TRUE(M.ok()) << Mod.Name << ": " << M.error().str();
  TracePolicy P;
  P.K = C.Policy;
  P.MinSize = Opt.PolicyMinSize;
  GeneratedTrace T =
      generateTrace(*M, Mod.Name, C.Strategy, P, C.TraceSeed, 10);
  ReplayResult R = replayWithOracle(*M, T);
  EXPECT_TRUE(R.ok()) << Mod.Name << "/" << T.Name << ": "
                      << (R.Mismatches.empty() ? "" : R.Mismatches[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, OracleRegression,
    ::testing::Values(
        // Hostile ghost names interleaved with re-asks after refusal.
        RegressionCase{ScenarioFamily::Location, 1,
                       AttackerStrategy::Hostile,
                       TracePolicy::Kind::MinSize, 3},
        // Min-entropy policy (threshold = floor(2^Bits)) on the probe
        // family's bisection ladder — the near-threshold endgame.
        RegressionCase{ScenarioFamily::Probe, 2, AttackerStrategy::Bisect,
                       TracePolicy::Kind::MinEntropy, 5},
        // Classifier downgrades mixed into a census sweep.
        RegressionCase{ScenarioFamily::Census, 3, AttackerStrategy::Sweep,
                       TracePolicy::Kind::MinSize, 7},
        // Repeat-idempotence on a constant-heavy medical module.
        RegressionCase{ScenarioFamily::Medical, 1,
                       AttackerStrategy::Repeat,
                       TracePolicy::Kind::Permissive, 11},
        // Interleaved sessions over grammar-random adversarial queries.
        RegressionCase{ScenarioFamily::Adversarial, 4,
                       AttackerStrategy::Interleave,
                       TracePolicy::Kind::MinSize, 13}));
