//===- tests/gen/TraceGenTest.cpp - Trace format and generator ------------===//
//
// The trace text form round-trips byte-exactly (render ∘ parse ∘ render
// = render), the parser rejects malformed input with clean errors, and
// generation is deterministic in its inputs.
//
//===----------------------------------------------------------------------===//

#include "gen/TraceGen.h"

#include "expr/Parser.h"
#include "gen/ScenarioGen.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Module smallModule() {
  auto M = parseModule("secret S { x: int[0, 15], y: int[0, 15] }\n"
                       "query q1 = x >= 8\n"
                       "query q2 = x + y <= 12\n"
                       "classify band = if x >= 10 then 2 else "
                       "if x >= 5 then 1 else 0\n");
  EXPECT_TRUE(M.ok()) << M.error().str();
  return *M;
}

std::vector<AttackerStrategy> allStrategies() {
  std::vector<AttackerStrategy> Ss;
  for (unsigned S = 0; S != NumAttackerStrategies; ++S)
    Ss.push_back(static_cast<AttackerStrategy>(S));
  return Ss;
}

} // namespace

TEST(TraceGen, StrategyNamesRoundTrip) {
  for (AttackerStrategy S : allStrategies()) {
    std::string Name = attackerStrategyName(S);
    auto Back = attackerStrategyByName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, S);
  }
  EXPECT_FALSE(attackerStrategyByName("nonesuch").has_value());
}

TEST(TraceGen, GenerateIsDeterministic) {
  Module M = smallModule();
  for (AttackerStrategy S : allStrategies()) {
    GeneratedTrace A = generateTrace(M, "small", S, {}, 42, 12);
    GeneratedTrace B = generateTrace(M, "small", S, {}, 42, 12);
    EXPECT_EQ(renderTrace(A), renderTrace(B))
        << attackerStrategyName(S);
    GeneratedTrace C = generateTrace(M, "small", S, {}, 43, 12);
    EXPECT_NE(renderTrace(A), renderTrace(C))
        << attackerStrategyName(S) << ": seed must matter";
  }
}

TEST(TraceGen, RenderParseRenderIsByteIdentity) {
  Module M = smallModule();
  TracePolicy Policies[3];
  Policies[0].K = TracePolicy::Kind::Permissive;
  Policies[1].K = TracePolicy::Kind::MinSize;
  Policies[1].MinSize = 100;
  Policies[2].K = TracePolicy::Kind::MinEntropy;
  Policies[2].Bits = 4;
  for (AttackerStrategy S : allStrategies()) {
    for (const TracePolicy &P : Policies) {
      GeneratedTrace T = generateTrace(M, "small", S, P, 7, 10);
      std::string Text = renderTrace(T);
      auto Parsed = parseTrace(Text);
      ASSERT_TRUE(Parsed.ok())
          << attackerStrategyName(S) << ": " << Parsed.error().str()
          << "\n" << Text;
      EXPECT_EQ(renderTrace(*Parsed), Text) << attackerStrategyName(S);
      EXPECT_EQ(Parsed->Name, T.Name);
      EXPECT_EQ(Parsed->ModuleName, "small");
      EXPECT_EQ(Parsed->Strategy, S);
      EXPECT_EQ(Parsed->Seed, T.Seed);
      EXPECT_EQ(Parsed->Secrets, T.Secrets);
      ASSERT_EQ(Parsed->Steps.size(), T.Steps.size());
      for (size_t I = 0; I != T.Steps.size(); ++I) {
        EXPECT_EQ(Parsed->Steps[I].SecretIndex, T.Steps[I].SecretIndex);
        EXPECT_EQ(Parsed->Steps[I].Name, T.Steps[I].Name);
      }
    }
  }
}

TEST(TraceGen, ParsesHandWrittenExample) {
  auto T = parseTrace("anosy-trace v1\n"
                      "trace location_s7_sweep\n"
                      "module location_s7\n"
                      "strategy sweep\n"
                      "seed 7\n"
                      "policy min-size 100\n"
                      "secret 42 17\n"
                      "# a comment, and a CRLF line ending:\r\n"
                      "step 0 branch_0\n"
                      "end\n");
  ASSERT_TRUE(T.ok()) << T.error().str();
  EXPECT_EQ(T->Name, "location_s7_sweep");
  EXPECT_EQ(T->ModuleName, "location_s7");
  EXPECT_EQ(T->Strategy, AttackerStrategy::Sweep);
  EXPECT_EQ(T->Seed, 7u);
  EXPECT_EQ(T->Policy.K, TracePolicy::Kind::MinSize);
  EXPECT_EQ(T->Policy.MinSize, 100);
  ASSERT_EQ(T->Secrets.size(), 1u);
  EXPECT_EQ(T->Secrets[0], (Point{42, 17}));
  ASSERT_EQ(T->Steps.size(), 1u);
  EXPECT_EQ(T->Steps[0].Name, "branch_0");
}

TEST(TraceGen, RejectsMalformedInput) {
  // No magic line.
  EXPECT_FALSE(parseTrace("trace t\nmodule m\nend\n").ok());
  // Missing `end`.
  EXPECT_FALSE(parseTrace("anosy-trace v1\ntrace t\nmodule m\n"
                          "strategy sweep\nseed 1\npolicy permissive\n"
                          "secret 1\nstep 0 q\n")
                   .ok());
  // Step index out of range of the declared secrets.
  EXPECT_FALSE(parseTrace("anosy-trace v1\ntrace t\nmodule m\n"
                          "strategy sweep\nseed 1\npolicy permissive\n"
                          "secret 1\nstep 3 q\nend\n")
                   .ok());
  // Unknown strategy.
  EXPECT_FALSE(parseTrace("anosy-trace v1\ntrace t\nmodule m\n"
                          "strategy zigzag\nseed 1\npolicy permissive\n"
                          "secret 1\nstep 0 q\nend\n")
                   .ok());
  // Negative policy threshold.
  EXPECT_FALSE(parseTrace("anosy-trace v1\ntrace t\nmodule m\n"
                          "strategy sweep\nseed 1\npolicy min-size -5\n"
                          "secret 1\nstep 0 q\nend\n")
                   .ok());
  // Non-numeric seed.
  EXPECT_FALSE(parseTrace("anosy-trace v1\ntrace t\nmodule m\n"
                          "strategy sweep\nseed banana\n"
                          "policy permissive\nsecret 1\nstep 0 q\nend\n")
                   .ok());
  // Missing trace name.
  EXPECT_FALSE(parseTrace("anosy-trace v1\nmodule m\nstrategy sweep\n"
                          "seed 1\npolicy permissive\nsecret 1\n"
                          "step 0 q\nend\n")
                   .ok());
  EXPECT_FALSE(parseTrace("").ok());
}

TEST(TraceGen, HostileStrategyEmitsUndefinedNames) {
  Module M = smallModule();
  bool FoundGhost = false;
  for (uint64_t Seed = 1; Seed != 10 && !FoundGhost; ++Seed) {
    GeneratedTrace T = generateTrace(M, "small", AttackerStrategy::Hostile,
                                     {}, Seed, 15);
    for (const TraceStep &Step : T.Steps)
      if (M.findQuery(Step.Name) == nullptr &&
          M.findClassifier(Step.Name) == nullptr)
        FoundGhost = true;
  }
  EXPECT_TRUE(FoundGhost)
      << "hostile traces should probe undefined names";
}

TEST(TraceGen, SecretsLieInSchema) {
  for (unsigned F = 0; F != NumScenarioFamilies; ++F) {
    ScenarioOptions SOpt;
    SOpt.Family = static_cast<ScenarioFamily>(F);
    SOpt.Seed = 13;
    GeneratedModule Mod = generateScenarioModule(SOpt);
    auto M = parseModule(Mod.Source);
    ASSERT_TRUE(M.ok()) << Mod.Name;
    for (AttackerStrategy S : allStrategies()) {
      GeneratedTrace T = generateTrace(*M, Mod.Name, S, {}, 99, 8);
      for (const Point &P : T.Secrets) {
        ASSERT_EQ(P.size(), M->schema().fields().size());
        for (size_t I = 0; I != P.size(); ++I) {
          EXPECT_GE(P[I], M->schema().fields()[I].Lo);
          EXPECT_LE(P[I], M->schema().fields()[I].Hi);
        }
      }
      for (const TraceStep &Step : T.Steps)
        EXPECT_LT(Step.SecretIndex, T.Secrets.size());
    }
  }
}
