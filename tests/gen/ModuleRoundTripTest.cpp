//===- tests/gen/ModuleRoundTripTest.cpp - parse ∘ render identity --------===//
//
// Satellite property: every generated module survives parse → render →
// parse with an identical elaborated AST (schema, names, and bodies all
// equal), and rendering is idempotent (render ∘ parse ∘ render =
// render). This is what lets the corpus check in .anosy files and trust
// that reloading them reproduces the exact modules the generator built.
//
//===----------------------------------------------------------------------===//

#include "gen/ScenarioGen.h"

#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

/// Structural equality of elaborated modules, via the canonical
/// renderings of schema and bodies (Expr::str is injective up to
/// structure on the fragment — pinned by tests/expr/RoundTripTest).
void expectModulesEqual(const Module &A, const Module &B,
                        const std::string &Context) {
  EXPECT_EQ(A.schema().str(), B.schema().str()) << Context;
  ASSERT_EQ(A.queries().size(), B.queries().size()) << Context;
  for (size_t I = 0; I != A.queries().size(); ++I) {
    EXPECT_EQ(A.queries()[I].Name, B.queries()[I].Name) << Context;
    EXPECT_EQ(A.queries()[I].Body->str(A.schema()),
              B.queries()[I].Body->str(B.schema()))
        << Context << "/" << A.queries()[I].Name;
  }
  ASSERT_EQ(A.classifiers().size(), B.classifiers().size()) << Context;
  for (size_t I = 0; I != A.classifiers().size(); ++I) {
    EXPECT_EQ(A.classifiers()[I].Name, B.classifiers()[I].Name) << Context;
    EXPECT_EQ(A.classifiers()[I].Body->str(A.schema()),
              B.classifiers()[I].Body->str(B.schema()))
        << Context << "/" << A.classifiers()[I].Name;
  }
}

} // namespace

TEST(ModuleRoundTrip, GeneratedModulesSurviveParseRenderParse) {
  for (unsigned F = 0; F != NumScenarioFamilies; ++F) {
    for (uint64_t Seed : {1, 2, 3, 17, 400}) {
      ScenarioOptions Opt;
      Opt.Family = static_cast<ScenarioFamily>(F);
      Opt.Seed = Seed;
      GeneratedModule Mod = generateScenarioModule(Opt);
      auto First = parseModule(Mod.Source);
      ASSERT_TRUE(First.ok())
          << Mod.Name << ": " << First.error().str() << "\n" << Mod.Source;
      std::string Rendered = renderModuleSource(*First);
      auto Second = parseModule(Rendered);
      ASSERT_TRUE(Second.ok())
          << Mod.Name << ": rendered source does not parse: "
          << Second.error().str() << "\n" << Rendered;
      expectModulesEqual(*First, *Second, Mod.Name);
      // Idempotence: a second render adds or loses nothing.
      EXPECT_EQ(renderModuleSource(*Second), Rendered) << Mod.Name;
    }
  }
}

TEST(ModuleRoundTrip, RenderCoversClassifiers) {
  auto M = parseModule("secret S { age: int[0, 99], zip: int[0, 9] }\n"
                       "query adult = age >= 18\n"
                       "classify band = if age < 18 then 0 else "
                       "if age < 65 then 1 else 2\n");
  ASSERT_TRUE(M.ok()) << M.error().str();
  std::string Rendered = renderModuleSource(*M);
  auto Back = parseModule(Rendered);
  ASSERT_TRUE(Back.ok()) << Back.error().str() << "\n" << Rendered;
  expectModulesEqual(*M, *Back, "classifier module");
}

TEST(ModuleRoundTrip, RenderInlinesHelperDefs) {
  // Elaboration erases `def`s; the render of the elaborated module must
  // still parse and mean the same thing without them.
  auto M = parseModule(
      "secret S { x: int[0, 20] }\n"
      "def shift(v: int): int = v - 10\n"
      "query centered = shift(x) >= -3 && shift(x) <= 3\n");
  ASSERT_TRUE(M.ok()) << M.error().str();
  std::string Rendered = renderModuleSource(*M);
  EXPECT_EQ(Rendered.find("def "), std::string::npos) << Rendered;
  auto Back = parseModule(Rendered);
  ASSERT_TRUE(Back.ok()) << Back.error().str() << "\n" << Rendered;
  expectModulesEqual(*M, *Back, "def module");
}
