//===- tests/gen/CuratedCorpusTest.cpp - Hand-written corpus fixtures -----===//
//
// The curated location-family fixtures under tests/corpus/curated/: byte
// pins (the files are hand-written, so the expected bytes live here, not
// in a generator) plus oracle-checked lint verdicts. These modules exist
// because the generated corpus alone cannot distinguish the octagon tier
// from a lucky box: each one carries a query whose forced refusal is
// provable only relationally, next to near-miss queries that pin the
// tier's precision.
//
//===----------------------------------------------------------------------===//

#include "analysis/LeakageAnalyzer.h"
#include "expr/Parser.h"
#include "gen/Oracle.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace anosy;

namespace {

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In.good()) << P;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::filesystem::path curatedDir() {
  return std::filesystem::path(ANOSY_CORPUS_DIR) / "curated";
}

constexpr const char *OffcenterBytes =
    R"(# anosy curated scenario: family=location variant=offcenter
# Hand-written companion to the generated location fixtures: off-center
# Manhattan balls clipped by the domain boundary. The quiet_zone ball is
# interior (13 candidates) but its bounding box holds 25 > 16, so only
# the octagon tier of anosy-lint can prove the forced refusal.
# Byte-pinned by tests/gen/CuratedCorpusTest.cpp — do not hand-edit
# without updating the pin there.
#
# anosy-lint: min-size=16

secret GeoLoc { x: int[0, 49], y: int[0, 49] }

def nearby(ox: int, oy: int, r: int): bool = abs(x - ox) + abs(y - oy) <= r

query corner_ad = nearby(3, 3, 10)
query quiet_zone = nearby(8, 31, 2)
query wide_reach = nearby(25, 20, 18)
)";

constexpr const char *OverlapBytes =
    R"(# anosy curated scenario: family=location variant=overlap
# Two overlapping advertiser balls plus their conjunction (the handoff
# band where both bid) and an interior radius-1 tracker. The tracker
# keeps 5 candidates against a bounding box of 9 > 8: a forced refusal
# only the octagon tier rejects statically. The handoff intersection is
# itself an octagon — its exact count (85 > 8) must keep it admitted,
# pinning the tier's precision.
# Byte-pinned by tests/gen/CuratedCorpusTest.cpp — do not hand-edit
# without updating the pin there.
#
# anosy-lint: min-size=8

secret GeoLoc { x: int[0, 39], y: int[0, 39] }

def nearby(ox: int, oy: int, r: int): bool = abs(x - ox) + abs(y - oy) <= r

query ad_east = nearby(22, 20, 9)
query ad_west = nearby(16, 20, 9)
query handoff = nearby(22, 20, 9) && nearby(16, 20, 9)
query tracker = nearby(30, 8, 1)
)";

} // namespace

TEST(CuratedCorpus, FixtureBytesPinned) {
  EXPECT_EQ(slurp(curatedDir() / "location_offcenter.anosy"),
            OffcenterBytes);
  EXPECT_EQ(slurp(curatedDir() / "location_overlap.anosy"), OverlapBytes);
}

TEST(CuratedCorpus, OffcenterVerdictsMatchOracle) {
  auto M = parseModule(OffcenterBytes);
  ASSERT_TRUE(M.ok()) << M.error().str();
  LintOptions Opt = lintOptionsForSource(OffcenterBytes);
  EXPECT_EQ(Opt.MinSize, 16);
  GroundTruth GT = computeGroundTruth(*M);
  EXPECT_EQ(GT.find("quiet_zone")->TrueCount, 13);
  EXPECT_EQ(GT.find("corner_ad")->TrueCount, 129);

  ModuleAnalysis A = analyzeModule(*M, Opt);
  const QueryAnalysis *Quiet = A.find("quiet_zone");
  ASSERT_NE(Quiet, nullptr);
  EXPECT_EQ(Quiet->Tier, DomainTier::Octagon);
  EXPECT_TRUE(Quiet->RejectStatically);
  EXPECT_EQ(Quiet->TrueCardBound, BigCount(13));
  // The clipped corner ball keeps 129 > 16 candidates: admitted.
  EXPECT_FALSE(A.find("corner_ad")->RejectStatically);
  EXPECT_FALSE(A.find("wide_reach")->RejectStatically);

  // Scored against the exhaustive oracle: the relational tier turns the
  // forced refusal into a true positive; box-only misses it. Both stay
  // sound (precision 1.0).
  LintScore Auto = scoreLint(*M, Opt.MinSize, GT);
  EXPECT_TRUE(Auto.sound());
  EXPECT_EQ(Auto.RejectTP, 1u);
  EXPECT_EQ(Auto.RejectFN, 0u);
  LintScore Off = scoreLint(*M, Opt.MinSize, GT, RelationalTier::Off);
  EXPECT_TRUE(Off.sound());
  EXPECT_EQ(Off.RejectTP, 0u);
  EXPECT_EQ(Off.RejectFN, 1u);
}

TEST(CuratedCorpus, OverlapVerdictsMatchOracle) {
  auto M = parseModule(OverlapBytes);
  ASSERT_TRUE(M.ok()) << M.error().str();
  LintOptions Opt = lintOptionsForSource(OverlapBytes);
  EXPECT_EQ(Opt.MinSize, 8);
  GroundTruth GT = computeGroundTruth(*M);
  EXPECT_EQ(GT.find("tracker")->TrueCount, 5);
  EXPECT_EQ(GT.find("handoff")->TrueCount, 85);

  ModuleAnalysis A = analyzeModule(*M, Opt);
  const QueryAnalysis *Tracker = A.find("tracker");
  ASSERT_NE(Tracker, nullptr);
  EXPECT_EQ(Tracker->Tier, DomainTier::Octagon);
  EXPECT_TRUE(Tracker->RejectStatically);
  EXPECT_EQ(Tracker->TrueCardBound, BigCount(5));
  // The meet of the two balls is itself an octagon, so the handoff
  // band's bound is exact — and 85 > 8 keeps it admitted.
  const QueryAnalysis *Handoff = A.find("handoff");
  ASSERT_NE(Handoff, nullptr);
  EXPECT_EQ(Handoff->TrueCardBound, BigCount(85));
  EXPECT_FALSE(Handoff->RejectStatically);
  EXPECT_FALSE(A.find("ad_east")->RejectStatically);
  EXPECT_FALSE(A.find("ad_west")->RejectStatically);

  LintScore Auto = scoreLint(*M, Opt.MinSize, GT);
  EXPECT_TRUE(Auto.sound());
  EXPECT_EQ(Auto.RejectTP, 1u);
  EXPECT_EQ(Auto.RejectFN, 0u);
  LintScore Off = scoreLint(*M, Opt.MinSize, GT, RelationalTier::Off);
  EXPECT_TRUE(Off.sound());
  EXPECT_EQ(Off.RejectTP, 0u);
  EXPECT_EQ(Off.RejectFN, 1u);
}
