//===- tests/cache/ArtifactCacheTest.cpp - Cross-process cache tests ------===//
//
// The content-addressed artifact store (DESIGN.md §12): publish/lookup
// round-trips across permuted schemas, corrupt entries degrading to
// misses (never to wrong answers), parent-posterior seeding through the
// family index, and the end-to-end session contract — a warm registration
// spends zero solver nodes and reproduces the cold artifacts exactly,
// while a poisoned entry silently resynthesizes.
//
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"

#include "core/AnosySession.h"
#include "expr/Parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>

using namespace anosy;

namespace {

/// A fresh, empty cache root under the test temp dir.
std::string freshRoot(const std::string &Name) {
  std::string Root = testing::TempDir() + "anosy_cache_" + Name;
  // Scrub leftovers from a previous run: two levels of sharded files.
  if (DIR *D = ::opendir(Root.c_str())) {
    while (struct dirent *E = ::readdir(D)) {
      std::string Shard = Root + "/" + E->d_name;
      if (E->d_name[0] == '.')
        continue;
      if (DIR *SD = ::opendir(Shard.c_str())) {
        while (struct dirent *F = ::readdir(SD))
          if (F->d_name[0] != '.')
            std::remove((Shard + "/" + F->d_name).c_str());
        ::closedir(SD);
      }
      ::rmdir(Shard.c_str());
    }
    ::closedir(D);
    ::rmdir(Root.c_str());
  }
  return Root;
}

/// Flips one byte in the middle of \p Path (checksum-visible damage).
void corruptFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good()) << Path;
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Text.size(), 10u);
  Text[Text.size() / 2] ^= 0x20;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

/// Corrupts every published cache entry under \p Root.
unsigned corruptAllEntries(const std::string &Root) {
  unsigned N = 0;
  DIR *D = ::opendir(Root.c_str());
  if (D == nullptr)
    return 0;
  while (struct dirent *E = ::readdir(D)) {
    if (E->d_name[0] == '.')
      continue;
    std::string Shard = Root + "/" + E->d_name;
    if (DIR *SD = ::opendir(Shard.c_str())) {
      while (struct dirent *F = ::readdir(SD)) {
        std::string Name = F->d_name;
        if (Name.size() > 4 && Name.rfind(".akb") == Name.size() - 4) {
          corruptFile(Shard + "/" + Name);
          ++N;
        }
      }
      ::closedir(SD);
    }
  }
  ::closedir(D);
  return N;
}

Module twoQueryModule() {
  auto M = parseModule(R"(
    secret Pt { x: int[0, 100], y: int[0, 100] }
    query low_x = x <= 40
    query band = x + y >= 60 && x + y <= 140
  )");
  EXPECT_TRUE(M.ok()) << (M.ok() ? "" : M.error().str());
  return M.takeValue();
}

} // namespace

TEST(ArtifactCache, MissingEntryIsPlainMiss) {
  ArtifactCache Cache(freshRoot("miss"));
  Schema S("S", {{"x", 0, 24}, {"y", 0, 24}});
  CanonicalQuery K = canonicalizeQuery(
      S, cmp(CmpOp::LE, fieldRef(0), intConst(5)), "interval", 0);
  EXPECT_FALSE(Cache.lookup<Box>(K).has_value());
  EXPECT_EQ(Cache.counters().Misses, 1u);
  EXPECT_EQ(Cache.counters().Poisoned, 0u);
}

TEST(ArtifactCache, StoreLookupRoundTripsAcrossPermutedSchemas) {
  ArtifactCache Cache(freshRoot("roundtrip"));
  // Writer declares (x, y) and queries y; reader declares (y, x). Both
  // canonicalize to the same entry; each gets the artifact back in its
  // *own* field order.
  Schema SA("S", {{"x", 0, 10}, {"y", 0, 20}});
  Schema SB("S", {{"y", 0, 20}, {"x", 0, 10}});
  CanonicalQuery KA = canonicalizeQuery(
      SA, cmp(CmpOp::LE, fieldRef(1), intConst(5)), "interval", 0);
  CanonicalQuery KB = canonicalizeQuery(
      SB, cmp(CmpOp::LE, fieldRef(0), intConst(5)), "interval", 0);
  ASSERT_EQ(KA.Hash, KB.Hash);

  IndSets<Box> Ind{Box({{0, 10}, {0, 5}}), Box({{0, 10}, {6, 20}})};
  auto W = Cache.store<Box>(KA, Ind);
  ASSERT_TRUE(W.ok()) << W.error().str();

  auto HitA = Cache.lookup<Box>(KA);
  ASSERT_TRUE(HitA.has_value());
  EXPECT_EQ(HitA->TrueSet, Ind.TrueSet);
  EXPECT_EQ(HitA->FalseSet, Ind.FalseSet);

  auto HitB = Cache.lookup<Box>(KB);
  ASSERT_TRUE(HitB.has_value());
  EXPECT_EQ(HitB->TrueSet, Box({{0, 5}, {0, 10}}));
  EXPECT_EQ(HitB->FalseSet, Box({{6, 20}, {0, 10}}));
  EXPECT_EQ(Cache.counters().Hits, 2u);
  EXPECT_EQ(Cache.counters().Stores, 1u);
}

TEST(ArtifactCache, CorruptEntryIsPoisonedMiss) {
  ArtifactCache Cache(freshRoot("corrupt"));
  Schema S("S", {{"x", 0, 24}, {"y", 0, 24}});
  CanonicalQuery K = canonicalizeQuery(
      S, cmp(CmpOp::LE, fieldRef(0), intConst(5)), "interval", 0);
  IndSets<Box> Ind{Box({{0, 5}, {0, 24}}), Box({{6, 24}, {0, 24}})};
  ASSERT_TRUE(Cache.store<Box>(K, Ind).ok());
  corruptFile(Cache.entryPath(K.Hash));

  EXPECT_FALSE(Cache.lookup<Box>(K).has_value());
  EXPECT_EQ(Cache.counters().Misses, 1u);
  EXPECT_EQ(Cache.counters().Poisoned, 1u);
  // Re-publishing heals the entry in place.
  ASSERT_TRUE(Cache.store<Box>(K, Ind).ok());
  EXPECT_TRUE(Cache.lookup<Box>(K).has_value());
}

TEST(ArtifactCache, WrongDomainEntryNeverServes) {
  // A powerset artifact and an interval artifact of the same body live at
  // different addresses; neither lookup can be served the other's bytes.
  ArtifactCache Cache(freshRoot("domains"));
  Schema S("S", {{"x", 0, 24}, {"y", 0, 24}});
  ExprRef Q = cmp(CmpOp::LE, fieldRef(0), intConst(5));
  CanonicalQuery KI = canonicalizeQuery(S, Q, "interval", 0);
  CanonicalQuery KP = canonicalizeQuery(S, Q, "powerset", 3);
  IndSets<Box> Ind{Box({{0, 5}, {0, 24}}), Box({{6, 24}, {0, 24}})};
  ASSERT_TRUE(Cache.store<Box>(KI, Ind).ok());
  EXPECT_FALSE(Cache.lookup<PowerBox>(KP).has_value());
  EXPECT_TRUE(Cache.lookup<Box>(KI).has_value());
}

TEST(ArtifactCache, SeedsDeriveFromCachedParentPosterior) {
  ArtifactCache Cache(freshRoot("seeds"));
  // Parent: q := x <= 11 over the wide prior [0,24]² with the exact
  // posterior split published.
  Schema Wide("S", {{"x", 0, 24}, {"y", 0, 24}});
  ExprRef Q = cmp(CmpOp::LE, fieldRef(0), intConst(11));
  CanonicalQuery KW = canonicalizeQuery(Wide, Q, "interval", 0);
  IndSets<Box> Parent{Box({{0, 11}, {0, 24}}), Box({{12, 24}, {0, 24}})};
  ASSERT_TRUE(Cache.store<Box>(KW, Parent).ok());

  // Child: same query under the narrower prior [0,24]×[0,5] (a refined
  // posterior from a sequential session). Exact lookup misses, but the
  // family scan finds the parent and carves its certain regions out of
  // the child prior.
  Schema Narrow("S", {{"x", 0, 24}, {"y", 0, 5}});
  CanonicalQuery KN = canonicalizeQuery(Narrow, Q, "interval", 0);
  ASSERT_NE(KN.Hash, KW.Hash);
  EXPECT_FALSE(Cache.lookup<Box>(KN).has_value());

  auto Seeds = Cache.lookupSeeds<Box>(KN);
  ASSERT_TRUE(Seeds.has_value());
  EXPECT_EQ(Seeds->ParentHash, KW.Hash);
  EXPECT_EQ(Seeds->TrueRegion, Box({{0, 11}, {0, 5}}));
  EXPECT_EQ(Seeds->FalseRegion, Box({{12, 24}, {0, 5}}));
  EXPECT_EQ(Cache.counters().SeedHits, 1u);

  // A child whose prior is NOT contained in the parent's must get no
  // seeds — the parent's artifact says nothing about secrets outside it.
  Schema Elsewhere("S", {{"x", 0, 30}, {"y", 0, 5}});
  CanonicalQuery KE = canonicalizeQuery(Elsewhere, Q, "interval", 0);
  EXPECT_FALSE(Cache.lookupSeeds<Box>(KE).has_value());
}

TEST(ArtifactCache, WarmSessionSkipsSynthesisAndReproducesArtifacts) {
  std::string Root = freshRoot("warm");
  SessionOptions Opt;

  ArtifactCache Cold(Root);
  Opt.Cache = &Cold;
  auto S1 = AnosySession<Box>::create(twoQueryModule(),
                                      minSizePolicy<Box>(50), Opt);
  ASSERT_TRUE(S1.ok()) << S1.error().str();
  EXPECT_EQ(S1->stats().CacheHits, 0u);
  EXPECT_EQ(S1->stats().CacheMisses, 2u);
  EXPECT_GT(S1->stats().SolverNodes, 0u);
  EXPECT_EQ(Cold.counters().Stores, 2u);

  // A different process would hold a different ArtifactCache over the
  // same directory; model that with a second instance.
  ArtifactCache Warm(Root);
  Opt.Cache = &Warm;
  auto S2 = AnosySession<Box>::create(twoQueryModule(),
                                      minSizePolicy<Box>(50), Opt);
  ASSERT_TRUE(S2.ok()) << S2.error().str();
  EXPECT_EQ(S2->stats().CacheHits, 2u);
  EXPECT_EQ(S2->stats().CacheMisses, 0u);
  // The warm bar: zero synthesis. Re-verification cost is tracked
  // honestly, but apart — it never touches the session budget.
  EXPECT_EQ(S2->stats().SolverNodes, 0u);
  EXPECT_GT(S2->stats().CacheVerifyNodes, 0u);

  for (const char *Name : {"low_x", "band"}) {
    const QueryArtifacts<Box> *A1 = S1->artifacts(Name);
    const QueryArtifacts<Box> *A2 = S2->artifacts(Name);
    ASSERT_NE(A1, nullptr);
    ASSERT_NE(A2, nullptr);
    EXPECT_TRUE(A2->FromCache);
    EXPECT_EQ(A1->Ind.TrueSet, A2->Ind.TrueSet) << Name;
    EXPECT_EQ(A1->Ind.FalseSet, A2->Ind.FalseSet) << Name;
    EXPECT_TRUE(A2->Certificates.valid());
  }
}

TEST(ArtifactCache, PoisonedEntriesResynthesizeToValidArtifacts) {
  std::string Root = freshRoot("poison");
  SessionOptions Opt;

  ArtifactCache Cold(Root);
  Opt.Cache = &Cold;
  auto S1 = AnosySession<Box>::create(twoQueryModule(),
                                      minSizePolicy<Box>(50), Opt);
  ASSERT_TRUE(S1.ok()) << S1.error().str();
  ASSERT_EQ(corruptAllEntries(Root), 2u);

  ArtifactCache Warm(Root);
  Opt.Cache = &Warm;
  auto S2 = AnosySession<Box>::create(twoQueryModule(),
                                      minSizePolicy<Box>(50), Opt);
  ASSERT_TRUE(S2.ok()) << S2.error().str();
  // Every entry was damaged: all lookups degrade to misses, synthesis
  // runs normally, and the repaired entries are republished.
  EXPECT_EQ(S2->stats().CacheHits, 0u);
  EXPECT_EQ(S2->stats().CacheMisses, 2u);
  EXPECT_GT(S2->stats().SolverNodes, 0u);
  EXPECT_EQ(Warm.counters().Poisoned, 2u);
  EXPECT_EQ(Warm.counters().Stores, 2u);
  for (const char *Name : {"low_x", "band"})
    EXPECT_TRUE(S2->artifacts(Name)->Certificates.valid());
}

TEST(ArtifactCache, SemanticallyPoisonedHitFailsReVerifyAndResynthesizes) {
  // A checksum-valid entry with a *wrong* artifact: the bytes parse, the
  // identity matches, but the claimed under-approximation is refutable.
  // Re-verify-on-load must catch it — the cache is never an authority.
  std::string Root = freshRoot("hostile");
  Module M = twoQueryModule();
  const QueryDef &Q = M.queries().front(); // low_x: x <= 40
  ArtifactCache Hostile(Root);
  CanonicalQuery K =
      canonicalizeQuery(M.schema(), Q.Body, DomainTraits<Box>::Name, 0);
  // Claim the whole prior answers true — false for any x > 40.
  IndSets<Box> Lie{Box::top(M.schema()), Box({{41, 100}, {0, 100}})};
  ASSERT_TRUE(Hostile.store<Box>(K, Lie).ok());

  ArtifactCache Cache(Root);
  SessionOptions Opt;
  Opt.Cache = &Cache;
  auto S = AnosySession<Box>::create(std::move(M),
                                     minSizePolicy<Box>(50), Opt);
  ASSERT_TRUE(S.ok()) << S.error().str();
  const QueryArtifacts<Box> *Art = S->artifacts("low_x");
  ASSERT_NE(Art, nullptr);
  EXPECT_FALSE(Art->FromCache);
  EXPECT_TRUE(Art->Certificates.valid());
  // The lie never became the artifact.
  EXPECT_TRUE(Art->Ind.TrueSet.subsetOf(Box({{0, 40}, {0, 100}})));
  EXPECT_GE(Cache.counters().Poisoned, 1u);
}

TEST(ArtifactCache, PowerBoxArtifactsRoundTripThroughSessions) {
  std::string Root = freshRoot("powerbox");
  SessionOptions Opt;
  Opt.PowersetSize = 3;

  ArtifactCache Cold(Root);
  Opt.Cache = &Cold;
  auto S1 = AnosySession<PowerBox>::create(twoQueryModule(),
                                           minSizePolicy<PowerBox>(50), Opt);
  ASSERT_TRUE(S1.ok()) << S1.error().str();
  EXPECT_EQ(Cold.counters().Stores, 2u);

  ArtifactCache Warm(Root);
  Opt.Cache = &Warm;
  auto S2 = AnosySession<PowerBox>::create(twoQueryModule(),
                                           minSizePolicy<PowerBox>(50), Opt);
  ASSERT_TRUE(S2.ok()) << S2.error().str();
  EXPECT_EQ(S2->stats().CacheHits, 2u);
  EXPECT_EQ(S2->stats().SolverNodes, 0u);
  for (const char *Name : {"low_x", "band"}) {
    EXPECT_EQ(S1->artifacts(Name)->Ind.TrueSet,
              S2->artifacts(Name)->Ind.TrueSet)
        << Name;
    EXPECT_EQ(S1->artifacts(Name)->Ind.FalseSet,
              S2->artifacts(Name)->Ind.FalseSet)
        << Name;
  }
}
