//===- tests/cache/QueryKeyTest.cpp - Canonical query identity tests ------===//
//
// The cross-process cache key (DESIGN.md §12) must identify queries by
// *meaning*, not spelling: alpha-renamed fields, permuted field orders,
// and simplifier-equal bodies hash identically, while semantically
// distinct queries never collide (checked differentially against the
// exhaustive oracle). The golden pins at the bottom freeze the serialized
// form byte-for-byte — the hash is an on-disk address shared between
// processes and releases, so any change to it is a cache-format break and
// must be deliberate.
//
//===----------------------------------------------------------------------===//

#include "cache/QueryKey.h"

#include "baselines/Exhaustive.h"
#include "expr/Eval.h"
#include "gen/QueryGen.h"
#include "support/Checksum.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>

using namespace anosy;

namespace {

Schema xySchema() { return Schema("S", {{"x", 0, 24}, {"y", 0, 24}}); }

/// q := y <= 5, written against \p FieldIndex for schemas that declare y
/// at different positions.
ExprRef leq5(unsigned FieldIndex) {
  return cmp(CmpOp::LE, fieldRef(FieldIndex), intConst(5));
}

/// Semantic equality of two queries over \p S by enumeration.
bool semanticallyEqual(const ExprRef &A, const ExprRef &B, const Schema &S) {
  bool Equal = true;
  forEachPoint(Box::top(S), [&](const Point &P) {
    if (evalBool(*A, P) != evalBool(*B, P)) {
      Equal = false;
      return false;
    }
    return true;
  });
  return Equal;
}

} // namespace

TEST(QueryKey, AlphaRenamedFieldsHashIdentically) {
  // Field *names* never enter the identity — only bounds and use sites.
  Schema A("Loc", {{"x", 0, 24}, {"y", 0, 24}});
  Schema B("Somewhere", {{"lat", 0, 24}, {"lng", 0, 24}});
  ExprRef Q = cmp(CmpOp::LE, add(fieldRef(0), fieldRef(1)), intConst(10));
  CanonicalQuery KA = canonicalizeQuery(A, Q, "interval", 0);
  CanonicalQuery KB = canonicalizeQuery(B, Q, "interval", 0);
  EXPECT_EQ(KA.Hash, KB.Hash);
  EXPECT_EQ(KA.KeyText, KB.KeyText);
}

TEST(QueryKey, PermutedFieldOrderHashesIdentically) {
  // y declared second and referenced as $1 vs declared first and
  // referenced as $0: both canonicalize to "first-used field is f0".
  Schema A("S", {{"x", 0, 10}, {"y", 0, 20}});
  Schema B("S", {{"y", 0, 20}, {"x", 0, 10}});
  CanonicalQuery KA = canonicalizeQuery(A, leq5(1), "interval", 0);
  CanonicalQuery KB = canonicalizeQuery(B, leq5(0), "interval", 0);
  EXPECT_EQ(KA.Hash, KB.Hash);
  EXPECT_EQ(KA.KeyText, KB.KeyText);
  // The permutations differ — that is the point: each caller can map its
  // own field order onto the shared canonical artifact.
  EXPECT_EQ(KA.FieldPerm, (std::vector<unsigned>{1, 0}));
  EXPECT_EQ(KB.FieldPerm, (std::vector<unsigned>{0, 1}));
}

TEST(QueryKey, SimplifierEqualBodiesHashIdentically) {
  Schema S = xySchema();
  // x + 0 <= 5  ≡  x <= 5 under the simplifier's normal form.
  ExprRef Plain = leq5(0);
  ExprRef Padded = cmp(CmpOp::LE, add(fieldRef(0), intConst(0)), intConst(5));
  CanonicalQuery KA = canonicalizeQuery(S, Plain, "interval", 0);
  CanonicalQuery KB = canonicalizeQuery(S, Padded, "interval", 0);
  EXPECT_EQ(KA.Hash, KB.Hash);
  // Tautological wrapping folds away too.
  ExprRef Wrapped = andOf(Padded, boolConst(true));
  EXPECT_EQ(canonicalizeQuery(S, Wrapped, "interval", 0).Hash, KA.Hash);
}

TEST(QueryKey, PriorChangesHashButNotFamily) {
  Schema Wide("S", {{"x", 0, 24}, {"y", 0, 24}});
  Schema Narrow("S", {{"x", 0, 9}, {"y", 0, 9}});
  ExprRef Q = leq5(0);
  CanonicalQuery KW = canonicalizeQuery(Wide, Q, "interval", 0);
  CanonicalQuery KN = canonicalizeQuery(Narrow, Q, "interval", 0);
  EXPECT_NE(KW.Hash, KN.Hash);
  // Same prior-independent prefix: the family groups the same query
  // under every prior, which is what parent-posterior seeding scans.
  EXPECT_EQ(familyHash(KW), familyHash(KN));
}

TEST(QueryKey, DomainAndPowersetSizeSeparateEntries) {
  Schema S = xySchema();
  ExprRef Q = leq5(0);
  uint64_t Interval = canonicalizeQuery(S, Q, "interval", 0).Hash;
  uint64_t Power3 = canonicalizeQuery(S, Q, "powerset", 3).Hash;
  uint64_t Power5 = canonicalizeQuery(S, Q, "powerset", 5).Hash;
  EXPECT_NE(Interval, Power3);
  EXPECT_NE(Power3, Power5);
}

TEST(QueryKey, CanonicalBodyPreservesSemantics) {
  // The canonical body under the canonical schema must mean exactly what
  // the original body means under the original schema, point for point.
  Schema S = xySchema();
  QueryGen Gen(0xC0FFEE);
  for (int I = 0; I != 40; ++I) {
    ExprRef Q = Gen.genQuery();
    CanonicalQuery K = canonicalizeQuery(S, Q, "interval", 0);
    forEachPoint(Box::top(Schema("S", {{"x", 0, 4}, {"y", 0, 4}})),
                 [&](const Point &P) {
                   Point CanonP(P.size());
                   for (size_t C = 0; C != P.size(); ++C)
                     CanonP[C] = P[K.FieldPerm[C]];
                   EXPECT_EQ(evalBool(*Q, P), evalBool(*K.CanonBody, CanonP))
                       << Q->str();
                   return true;
                 });
  }
}

TEST(QueryKey, EqualHashesAreSemanticallyEqualDifferentially) {
  // Collision hunt against the exhaustive oracle. Two queries share a
  // hash iff they share a canonical form (modulo an FNV collision), and
  // a shared canonical form is exactly what the cache may soundly serve
  // across: the artifact comes back through each caller's own FieldPerm.
  // So the property is two-layered — equal hash must mean (a) identical
  // serialized key (no FNV collision observed) and (b) canonical bodies
  // the oracle cannot tell apart on any point of the canonical prior.
  Schema S("S", {{"x", 0, 6}, {"y", 0, 6}});
  QueryGen Gen(0xD1FF);
  std::map<uint64_t, CanonicalQuery> ByHash;
  unsigned SameHashPairs = 0;
  for (int I = 0; I != 300; ++I) {
    ExprRef Q = Gen.genQuery();
    CanonicalQuery K = canonicalizeQuery(S, Q, "interval", 0);
    auto [It, Inserted] = ByHash.emplace(K.Hash, K);
    if (!Inserted) {
      ++SameHashPairs;
      EXPECT_EQ(K.KeyText, It->second.KeyText)
          << "FNV collision between distinct serialized keys";
      EXPECT_TRUE(semanticallyEqual(K.CanonBody, It->second.CanonBody,
                                    K.CanonSchema))
          << "hash collision between semantically distinct queries:\n  "
          << K.CanonBody->str() << "\n  " << It->second.CanonBody->str();
    }
  }
  // The sweep must actually exercise the equal-hash path (duplicate
  // shapes from a grammar this small are plentiful).
  EXPECT_GT(SameHashPairs, 0u);
}

TEST(QueryKey, PermuteRoundTripsBoxAndPowerBox) {
  Rng R(7);
  for (int I = 0; I != 50; ++I) {
    std::vector<unsigned> Perm{0, 1, 2};
    for (size_t J = 2; J != 0; --J)
      std::swap(Perm[J], Perm[static_cast<size_t>(R.range(0, int64_t(J)))]);
    std::vector<Interval> Dims;
    for (int D = 0; D != 3; ++D) {
      // At least two points per dim so the exclude below is proper.
      int64_t Lo = R.range(-10, 10);
      Dims.push_back({Lo, R.range(Lo + 1, 12)});
    }
    Box B(Dims);
    EXPECT_EQ(permuteFromCanonical(permuteToCanonical(B, Perm), Perm).str(),
              B.str());
    // Exclude a proper slab of the include so construction cannot
    // canonicalize the include away.
    Box Slab = B.withDim(0, Interval{B.dim(0).Lo, B.dim(0).Lo});
    PowerBox P(3, {B}, {Slab});
    EXPECT_EQ(permuteFromCanonical(permuteToCanonical(P, Perm), Perm).str(),
              P.str());
  }
}

TEST(QueryKey, BoxMinusOuterCoversDifferenceAndStaysInside) {
  Schema S("S", {{"x", 0, 7}, {"y", 0, 7}});
  Rng R(11);
  auto RandomBox = [&] {
    std::vector<Interval> Dims;
    for (int D = 0; D != 2; ++D) {
      int64_t Lo = R.range(0, 7);
      Dims.push_back({Lo, R.range(Lo, 7)});
    }
    return Box(Dims);
  };
  for (int I = 0; I != 200; ++I) {
    Box A = RandomBox(), B = RandomBox();
    Box Out = boxMinusOuter(A, B);
    EXPECT_TRUE(Out.subsetOf(A)) << A.str() << " \\ " << B.str();
    forEachPoint(A, [&](const Point &P) {
      if (!B.contains(P))
        EXPECT_TRUE(Out.contains(P))
            << A.str() << " \\ " << B.str() << " lost a point";
      return true;
    });
  }
}

TEST(QueryKey, GoldenSerializedFormAndHashes) {
  // Byte-stable pins: these exact strings are on-disk addresses shared
  // across processes. Changing them silently orphans every existing
  // cache directory — bump the "v1" version marker instead.
  Schema S = xySchema();
  CanonicalQuery K = canonicalizeQuery(S, leq5(0), "interval", 0);
  EXPECT_EQ(K.KeyText, "anosy-cache-key v1\n"
                       "domain interval k 0\n"
                       "arity 2\n"
                       "query $0 <= 5\n"
                       "prior [0, 24] [0, 24]\n");
  EXPECT_EQ(checksumHex(K.Hash), "70445d22410dd2ee");
  EXPECT_EQ(checksumHex(familyHash(K)), "05f480eb2126f654");

  CanonicalQuery KP = canonicalizeQuery(
      S, andOf(leq5(1), cmp(CmpOp::GE, fieldRef(0), intConst(3))),
      "powerset", 4);
  EXPECT_EQ(KP.KeyText, "anosy-cache-key v1\n"
                        "domain powerset k 4\n"
                        "arity 2\n"
                        "query ($0 <= 5) && ($1 >= 3)\n"
                        "prior [0, 24] [0, 24]\n");
  EXPECT_EQ(checksumHex(KP.Hash), "b0718eb6734a2b3b");
}
