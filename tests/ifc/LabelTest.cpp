//===- tests/ifc/LabelTest.cpp - Label lattice tests ----------------------===//

#include "ifc/Label.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(SecurityLevel, LatticeOrder) {
  SecurityLevel Pub(SecurityLevel::Public), Sec(SecurityLevel::Secret);
  EXPECT_TRUE(Pub.canFlowTo(Sec));
  EXPECT_FALSE(Sec.canFlowTo(Pub));
  EXPECT_TRUE(Pub.canFlowTo(Pub));
  EXPECT_TRUE(SecurityLevel::bottom().canFlowTo(SecurityLevel::top()));
}

TEST(SecurityLevel, JoinMeet) {
  SecurityLevel Conf(SecurityLevel::Confidential),
      Sec(SecurityLevel::Secret);
  EXPECT_EQ(Conf.join(Sec), Sec);
  EXPECT_EQ(Conf.meet(Sec), Conf);
  EXPECT_EQ(Sec.join(Sec), Sec);
}

TEST(SecurityLevel, LatticeLawsExhaustive) {
  std::vector<SecurityLevel> All{
      SecurityLevel(SecurityLevel::Public),
      SecurityLevel(SecurityLevel::Confidential),
      SecurityLevel(SecurityLevel::Secret),
      SecurityLevel(SecurityLevel::TopSecret)};
  for (const auto &A : All)
    for (const auto &B : All) {
      // join is the least upper bound; meet the greatest lower bound.
      EXPECT_TRUE(A.canFlowTo(A.join(B)));
      EXPECT_TRUE(B.canFlowTo(A.join(B)));
      EXPECT_TRUE(A.meet(B).canFlowTo(A));
      EXPECT_TRUE(A.meet(B).canFlowTo(B));
      // canFlowTo is antisymmetric: both directions means equality.
      if (A.canFlowTo(B) && B.canFlowTo(A)) {
        EXPECT_TRUE(A == B);
      }
    }
}

TEST(SecurityLevel, Names) {
  EXPECT_EQ(SecurityLevel(SecurityLevel::Secret).str(), "Secret");
  EXPECT_EQ(SecurityLevel::bottom().str(), "Public");
}

TEST(ReaderSet, PublicFlowsAnywhere) {
  ReaderSet Pub;
  ReaderSet Alice(std::set<std::string>{"alice"});
  EXPECT_TRUE(Pub.canFlowTo(Alice));
  EXPECT_TRUE(Pub.canFlowTo(ReaderSet::top()));
}

TEST(ReaderSet, RestrictedCannotGoPublic) {
  ReaderSet Alice(std::set<std::string>{"alice"});
  EXPECT_FALSE(Alice.canFlowTo(ReaderSet::bottom()));
}

TEST(ReaderSet, FlowShrinksReaders) {
  ReaderSet AB(std::set<std::string>{"alice", "bob"});
  ReaderSet A(std::set<std::string>{"alice"});
  EXPECT_TRUE(AB.canFlowTo(A));   // dropping bob restricts readership
  EXPECT_FALSE(A.canFlowTo(AB));  // adding bob would leak to bob
}

TEST(ReaderSet, JoinIntersectsReaders) {
  ReaderSet AB(std::set<std::string>{"alice", "bob"});
  ReaderSet BC(std::set<std::string>{"bob", "carol"});
  ReaderSet J = AB.join(BC);
  EXPECT_EQ(J.readers(), (std::set<std::string>{"bob"}));
  // Join with public is the identity.
  EXPECT_TRUE(AB.join(ReaderSet()) == AB);
}

TEST(ReaderSet, MeetUnionsReaders) {
  ReaderSet A(std::set<std::string>{"alice"});
  ReaderSet B(std::set<std::string>{"bob"});
  EXPECT_EQ(A.meet(B).readers(), (std::set<std::string>{"alice", "bob"}));
  EXPECT_TRUE(A.meet(ReaderSet()).isEveryone());
}

TEST(ReaderSet, TopReadableByNoOne) {
  ReaderSet Top = ReaderSet::top();
  EXPECT_TRUE(Top.readers().empty());
  EXPECT_FALSE(Top.isEveryone());
  ReaderSet A(std::set<std::string>{"alice"});
  EXPECT_TRUE(A.canFlowTo(Top));
  EXPECT_FALSE(Top.canFlowTo(A));
}

TEST(ReaderSet, Str) {
  EXPECT_EQ(ReaderSet().str(), "{everyone}");
  EXPECT_EQ(ReaderSet(std::set<std::string>{"alice", "bob"}).str(),
            "{alice, bob}");
}
