//===- tests/ifc/ReaderSetAnosyTTest.cpp - DC-label stacking tests --------===//
//
// AnosyT stacked on a SecureContext with the powerset-of-principals
// lattice: the paper's claim that the transformer composes with *any*
// underlying secure monad, exercised with a second label model.
//
//===----------------------------------------------------------------------===//

#include "core/AnosyT.h"

#include "expr/Parser.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

QueryInfo<Box> synthesizedNearby(const Schema &S) {
  auto Q = parseQueryExpr(S, "abs(x - 200) + abs(y - 200) <= 100");
  EXPECT_TRUE(Q.ok());
  auto Sy = Synthesizer::create(S, Q.value());
  EXPECT_TRUE(Sy.ok());
  auto Sets = Sy->synthesizeInterval(ApproxKind::Under);
  EXPECT_TRUE(Sets.ok());
  return {"nearby", Q.value(), Sets.takeValue(), ApproxKind::Under};
}

} // namespace

TEST(ReaderSetAnosyT, DowngradeUnderPrincipalLattice) {
  Schema S = userLoc();
  KnowledgeTracker<Box> Tracker(S, minSizePolicy<Box>(100));
  Tracker.registerQuery(synthesizedNearby(S));

  SecureContext<Point, ReaderSet> Ctx;
  AnosyT<Box, ReaderSet> Monad(Tracker, Ctx);

  // The location is readable only by alice (the data owner).
  ReaderSet AliceOnly(std::set<std::string>{"alice"});
  auto Secret = Ctx.labelValue({200, 200}, AliceOnly);
  ASSERT_TRUE(Secret.ok());

  auto R = Monad.downgrade(*Secret, "nearby");
  ASSERT_TRUE(R.ok()) << R.error().str();
  EXPECT_TRUE(*R);

  // The downgrade did not taint the context: the boolean can be shown to
  // everyone (that is the point of bounded declassification).
  EXPECT_TRUE(Ctx.output(ReaderSet(), {*R ? 1 : 0, 0}, nullptr).ok());

  // The raw location still cannot reach the everyone channel.
  ASSERT_TRUE(Ctx.unlabel(*Secret).ok());
  EXPECT_FALSE(Ctx.output(ReaderSet(), {200, 200}, nullptr).ok());
  // It can reach alice's own channel.
  EXPECT_TRUE(Ctx.output(AliceOnly, {200, 200}, nullptr).ok());
}

TEST(ReaderSetAnosyT, AuditRecordsPrincipalLabels) {
  Schema S = userLoc();
  KnowledgeTracker<Box> Tracker(S, permissivePolicy<Box>());
  Tracker.registerQuery(synthesizedNearby(S));
  SecureContext<Point, ReaderSet> Ctx;
  AnosyT<Box, ReaderSet> Monad(Tracker, Ctx);

  ReaderSet Owners(std::set<std::string>{"alice", "ops"});
  auto Secret = Ctx.labelValue({10, 10}, Owners);
  ASSERT_TRUE(Secret.ok());
  ASSERT_TRUE(Monad.downgrade(*Secret, "nearby").ok());
  ASSERT_EQ(Ctx.auditLog().size(), 1u);
  EXPECT_EQ(Ctx.auditLog()[0].FromLabel, "{alice, ops}");
}
