//===- tests/ifc/SecureContextTest.cpp - LIO-substrate tests --------------===//

#include "ifc/SecureContext.h"

#include "expr/Schema.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {
using Ctx = SecureContext<Point, SecurityLevel>;
const SecurityLevel Pub(SecurityLevel::Public);
const SecurityLevel Sec(SecurityLevel::Secret);
const SecurityLevel TopS(SecurityLevel::TopSecret);
} // namespace

TEST(SecureContext, StartsAtBottom) {
  Ctx C;
  EXPECT_TRUE(C.currentLabel() == SecurityLevel::bottom());
  EXPECT_TRUE(C.clearance() == SecurityLevel::top());
}

TEST(SecureContext, LabelAndUnlabelRaisesCurrent) {
  Ctx C;
  auto L = C.labelValue({300, 200}, Sec);
  ASSERT_TRUE(L.ok());
  EXPECT_TRUE(L->label() == Sec);
  auto V = C.unlabel(*L);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, (Point{300, 200}));
  EXPECT_TRUE(C.currentLabel() == Sec); // tainted now
}

TEST(SecureContext, CannotLabelBelowCurrent) {
  Ctx C;
  auto L = C.labelValue({1, 1}, Sec);
  ASSERT_TRUE(C.unlabel(*L).ok());
  // Current is Secret; labeling Public data now would launder the taint.
  auto Bad = C.labelValue({2, 2}, Pub);
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.error().code(), ErrorCode::LabelCheckFailure);
}

TEST(SecureContext, ClearanceBoundsUnlabel) {
  Ctx C(Sec); // clearance Secret
  Labeled<Point, SecurityLevel> TooHigh({9, 9}, TopS);
  auto V = C.unlabel(TooHigh);
  ASSERT_FALSE(V.ok());
  EXPECT_EQ(V.error().code(), ErrorCode::LabelCheckFailure);
  // The failed unlabel must not taint the context.
  EXPECT_TRUE(C.currentLabel() == SecurityLevel::bottom());
}

TEST(SecureContext, ClearanceBoundsLabel) {
  Ctx C(Sec);
  EXPECT_FALSE(C.labelValue({1, 2}, TopS).ok());
  EXPECT_TRUE(C.labelValue({1, 2}, Sec).ok());
}

TEST(SecureContext, OutputChecksNonInterference) {
  Ctx C;
  std::vector<Point> PublicChannel;
  // Untainted context may write to a public channel.
  EXPECT_TRUE(C.output(Pub, {7, 7}, &PublicChannel).ok());
  // Taint the context with a secret...
  Labeled<Point, SecurityLevel> S({300, 200}, Sec);
  ASSERT_TRUE(C.unlabel(S).ok());
  // ...now writing anything public is rejected: this is exactly the leak
  // `downgrade` exists to mediate (§2.1).
  auto R = C.output(Pub, {1, 0}, &PublicChannel);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(PublicChannel.size(), 1u);
  // The secret channel is still writable.
  EXPECT_TRUE(C.output(Sec, {1, 0}, nullptr).ok());
}

TEST(SecureContext, RunToLabeledRestoresLabel) {
  Ctx C;
  Labeled<Point, SecurityLevel> S({42, 0}, Sec);
  auto L = C.runToLabeled([&]() -> Result<Point> {
    auto V = C.unlabel(S); // taints the sub-computation only
    if (!V.ok())
      return V.error();
    return Point{(*V)[0] + 1, 0};
  });
  ASSERT_TRUE(L.ok());
  EXPECT_TRUE(L->label() == Sec); // the result carries the taint
  EXPECT_TRUE(C.currentLabel() == SecurityLevel::bottom()); // caller clean
  EXPECT_EQ(L->unprotectTCB(), (Point{43, 0}));
}

TEST(SecureContext, RunToLabeledPropagatesErrors) {
  Ctx C;
  auto L = C.runToLabeled([]() -> Result<Point> {
    return Error(ErrorCode::Other, "inner failure");
  });
  EXPECT_FALSE(L.ok());
  EXPECT_TRUE(C.currentLabel() == SecurityLevel::bottom());
}

TEST(SecureContext, DeclassifyTCBDoesNotTaintButAudits) {
  Ctx C;
  Labeled<Point, SecurityLevel> S({300, 200}, Sec);
  const Point &V = C.declassifyTCB(S, "bounded downgrade: nearby200");
  EXPECT_EQ(V, (Point{300, 200}));
  EXPECT_TRUE(C.currentLabel() == SecurityLevel::bottom());
  ASSERT_EQ(C.auditLog().size(), 1u);
  EXPECT_EQ(C.auditLog()[0].Description, "bounded downgrade: nearby200");
  EXPECT_EQ(C.auditLog()[0].FromLabel, "Secret");
}

TEST(SecureContext, ReaderSetContextWorks) {
  SecureContext<Point, ReaderSet> C;
  ReaderSet Alice(std::set<std::string>{"alice"});
  auto L = C.labelValue({5, 5}, Alice);
  ASSERT_TRUE(L.ok());
  ASSERT_TRUE(C.unlabel(*L).ok());
  // Tainted with alice-only data: cannot write to the everyone channel.
  EXPECT_FALSE(C.output(ReaderSet(), {0, 0}, nullptr).ok());
  EXPECT_TRUE(C.output(Alice, {0, 0}, nullptr).ok());
}
