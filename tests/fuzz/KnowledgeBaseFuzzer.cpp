//===- tests/fuzz/KnowledgeBaseFuzzer.cpp - libFuzzer KB parser target ----===//
//
// libFuzzer entry point for the knowledge-base parsers. Build with the
// ANOSY_LIBFUZZER CMake option (requires a clang toolchain):
//
//   cmake -B build-fuzz -S . -DANOSY_LIBFUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target kb_fuzzer
//   build-fuzz/tests/fuzz/kb_fuzzer tests/fuzz/kb_corpus -max_total_time=60
//
// Property: every parser entry point returns a Result for arbitrary
// bytes — no crashes, no hangs, no sanitizer reports. Both the strict
// parser and the salvage parser run, over both domains, so the fuzzer
// exercises the v1 path, the v2 checksum path, and record classification
// in one target.
//
//===----------------------------------------------------------------------===//

#include "core/ArtifactIO.h"

#include <cstddef>
#include <cstdint>
#include <string>

using namespace anosy;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Text(reinterpret_cast<const char *>(Data), Size);
  (void)parseKnowledgeBase<Box>(Text);
  (void)parseKnowledgeBase<PowerBox>(Text);
  (void)recoverKnowledgeBase<Box>(Text);
  (void)recoverKnowledgeBase<PowerBox>(Text);
  return 0;
}
