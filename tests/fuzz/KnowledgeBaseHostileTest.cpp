//===- tests/fuzz/KnowledgeBaseHostileTest.cpp - Hostile KB inputs --------===//
//
// Systematic adversarial inputs for the knowledge-base parsers. The
// contract under test is narrow and absolute: parseKnowledgeBase and
// recoverKnowledgeBase return a Result for *any* byte string — no
// crashes, no exceptions, no UB. (The libFuzzer target in
// KnowledgeBaseFuzzer.cpp explores the same property randomly; this test
// pins the classes of corruption we know matter.)
//
//===----------------------------------------------------------------------===//

#include "core/ArtifactIO.h"

#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

/// Both parsers, both domains: must return, never crash.
void parseEveryWay(const std::string &Text) {
  (void)parseKnowledgeBase<Box>(Text);
  (void)parseKnowledgeBase<PowerBox>(Text);
  (void)recoverKnowledgeBase<Box>(Text);
  (void)recoverKnowledgeBase<PowerBox>(Text);
}

std::string validV2() {
  auto M = parseModule(R"(
    secret S { a: int[0, 40], b: int[0, 40] }
    query small = a + b <= 10
    query big = a + b >= 60
  )");
  EXPECT_TRUE(M.ok());
  Module Mod = M.takeValue();
  std::vector<QueryInfo<Box>> Infos;
  for (const QueryDef &Q : Mod.queries()) {
    auto Sy = Synthesizer::create(Mod.schema(), Q.Body);
    EXPECT_TRUE(Sy.ok());
    QueryInfo<Box> Info;
    Info.Name = Q.Name;
    Info.QueryExpr = Q.Body;
    auto Sets = Sy->synthesizeInterval(ApproxKind::Under);
    EXPECT_TRUE(Sets.ok());
    Info.Ind = Sets.takeValue();
    Infos.push_back(std::move(Info));
  }
  return serializeKnowledgeBaseV2(Mod.schema(), Infos);
}

} // namespace

TEST(KnowledgeBaseHostile, EveryPrefixOfAValidFile) {
  std::string Text = validV2();
  for (size_t Cut = 0; Cut <= Text.size(); ++Cut)
    parseEveryWay(Text.substr(0, Cut));
}

TEST(KnowledgeBaseHostile, EverySingleLineDeleted) {
  std::string Text = validV2();
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      break;
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  for (size_t Skip = 0; Skip != Lines.size(); ++Skip) {
    std::string Mutated;
    for (size_t I = 0; I != Lines.size(); ++I)
      if (I != Skip)
        Mutated += Lines[I] + "\n";
    parseEveryWay(Mutated);
    // Removing any line from a v2 file must break the strict parse:
    // every byte is covered by a record checksum or the trailer.
    EXPECT_FALSE(parseKnowledgeBase<Box>(Mutated).ok()) << "line " << Skip;
  }
}

TEST(KnowledgeBaseHostile, EveryByteFlipped) {
  std::string Text = validV2();
  for (size_t I = 0; I < Text.size(); ++I) {
    std::string Mutated = Text;
    Mutated[I] = char(Mutated[I] ^ 0x20); // case/symbol flip
    if (Mutated[I] == Text[I])
      continue;
    parseEveryWay(Mutated);
    EXPECT_FALSE(parseKnowledgeBase<Box>(Mutated).ok()) << "byte " << I;
  }
}

TEST(KnowledgeBaseHostile, ArityMismatches) {
  // Boxes with too few / too many intervals for the declared schema.
  const char *Wrong[] = {
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10], b: int[0, 10] }\n"
      "query q = a <= 5\n"
      "true include [0, 5]\n" // arity 1, schema arity 2
      "true exclude\nfalse include\nfalse exclude\nend\n",
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "query q = a <= 5\n"
      "true include [0, 5] [0, 5] [0, 5]\n" // arity 3, schema arity 1
      "true exclude\nfalse include\nfalse exclude\nend\n",
  };
  for (const char *Text : Wrong) {
    parseEveryWay(Text);
    EXPECT_FALSE(parseKnowledgeBase<Box>(Text).ok());
    // Salvage classifies the arity-mismatched record as damaged (query
    // body is fine), never as intact.
    auto Rec = recoverKnowledgeBase<Box>(Text);
    ASSERT_TRUE(Rec.ok());
    EXPECT_TRUE(Rec->Intact.empty());
    EXPECT_EQ(Rec->Damaged.size(), 1u);
  }
}

TEST(KnowledgeBaseHostile, HugeAndMalformedIntegers) {
  const char *Cases[] = {
      // Overflow beyond int64: must be a parse error, not UB or a crash
      // (the old std::stoll-based parser threw out_of_range here).
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "query q = a <= 5\n"
      "true include [99999999999999999999999, 5]\n"
      "true exclude\nfalse include\nfalse exclude\nend\n",
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "query q = a <= 5\n"
      "true include [0, 18446744073709551617]\n"
      "true exclude\nfalse include\nfalse exclude\nend\n",
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "query q = a <= 5\n"
      "true include [-, 5]\n"
      "true exclude\nfalse include\nfalse exclude\nend\n",
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "query q = a <= 5\n"
      "true include [0x10, 5]\n"
      "true exclude\nfalse include\nfalse exclude\nend\n",
  };
  for (const char *Text : Cases) {
    parseEveryWay(Text);
    EXPECT_FALSE(parseKnowledgeBase<Box>(Text).ok());
  }
  // INT64_MIN / INT64_MAX themselves are representable and fine.
  std::string Extreme =
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[-9223372036854775808, 9223372036854775807] }\n"
      "query q = a <= 5\n"
      "true include [-9223372036854775808, 5]\n"
      "true exclude\nfalse include\nfalse exclude\nend\n";
  parseEveryWay(Extreme);
}

TEST(KnowledgeBaseHostile, StructuralGarbage) {
  const char *Cases[] = {
      "",
      "\n\n\n",
      "anosy-knowledge-base v1 domain interval",
      "anosy-knowledge-base v99 domain interval\nsecret S { a: int[0,1] }\n",
      "anosy-knowledge-base v2 domain interval\n", // no schema
      "anosy-knowledge-base v2 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "trailer fnv1a64:0000000000000000\n", // wrong trailer
      "anosy-knowledge-base v2 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "record-checksum fnv1a64:ffffffffffffffff\n"
      "end\n",
      "query q = a <= 5\nend\n", // no header at all
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "end\nend\nend\nend\n",
      "anosy-knowledge-base v1 domain interval\n"
      "secret S { a: int[0, 10] }\n"
      "query q = a <= 5\n"
      "true include [5, 0]\n" // inverted interval
      "true exclude\nfalse include\nfalse exclude\nend\n",
  };
  for (const char *Text : Cases)
    parseEveryWay(Text);
}

TEST(KnowledgeBaseHostile, RecoverNeverFailsPastTheSchema) {
  // Once header + schema parse, recover always returns a classification,
  // whatever follows.
  std::string Preamble = "anosy-knowledge-base v2 domain interval\n"
                         "secret S { a: int[0, 10] }\n";
  const char *Tails[] = {
      "query query query\n",
      "query q = a <= 5\nquery r = a >= 5\n", // two anchors, no bodies
      "true include [0, 5]\nend\n",
      "record-checksum fnv1a64:zzzz\n",
      "\x01\x02\x03\xff garbage bytes\n",
  };
  for (const char *Tail : Tails) {
    auto Rec = recoverKnowledgeBase<Box>(Preamble + Tail);
    ASSERT_TRUE(Rec.ok()) << Tail;
  }
}
