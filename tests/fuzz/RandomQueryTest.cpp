//===- tests/fuzz/RandomQueryTest.cpp - Grammar-directed property sweeps --===//
//
// End-to-end property testing over randomly generated queries from the
// §5.1 fragment. Each TEST_P instance draws dozens of random queries from
// one RNG seed and checks the library's key soundness contracts against
// brute force on a small secret space:
//
//   * abstract (interval) evaluation is sound for every box;
//   * the ∀/∃ deciders and the model counter agree with enumeration;
//   * synthesized under/over ind. sets sandwich the exact sets and pass
//     the refinement checker;
//   * the abstract-interpretation baseline's posteriors lose no point;
//   * bounded downgrade's tracked knowledge under-approximates the true
//     attacker knowledge on random downgrade sequences.
//
//===----------------------------------------------------------------------===//

#include "gen/QueryGen.h"

#include "baselines/AbstractInterpreter.h"
#include "baselines/Exhaustive.h"
#include "core/KnowledgeTracker.h"
#include "expr/Eval.h"
#include "solver/RangeEval.h"
#include "solver/ModelCounter.h"
#include "synth/Synthesizer.h"
#include "verify/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema smallSchema() { return Schema("F", {{"a", 0, 24}, {"b", 0, 24}}); }

class RandomQueries : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RandomQueries, AbstractEvaluationSound) {
  QueryGen Gen(GetParam());
  Rng R(GetParam() ^ 0xabcdef);
  Schema S = smallSchema();
  for (int I = 0; I != 30; ++I) {
    ExprRef Q = Gen.genQuery();
    int64_t XL = R.range(0, 24), YL = R.range(0, 24);
    Box B({{XL, R.range(XL, 24)}, {YL, R.range(YL, 24)}});
    Tribool T = evalTribool(*Q, B);
    if (T == Tribool::Unknown)
      continue;
    forEachPoint(B, [&](const Point &P) {
      EXPECT_EQ(evalBool(*Q, P), T == Tribool::True) << Q->str();
      return true;
    });
  }
}

TEST_P(RandomQueries, DecidersMatchBruteForce) {
  QueryGen Gen(GetParam() + 1000);
  Schema S = smallSchema();
  Box Top = Box::top(S);
  for (int I = 0; I != 20; ++I) {
    ExprRef Q = Gen.genQuery();
    PredicateRef P = exprPredicate(Q);

    int64_t Brute = countByEnumeration(*Q, Top);
    EXPECT_EQ(countSatExact(*P, Top).toInt64(), Brute) << Q->str();

    SolverBudget Budget;
    EXPECT_EQ(checkForall(*P, Top, Budget).Holds, Brute == 625) << Q->str();
    EXPECT_EQ(findWitness(*P, Top, Budget).Witness.has_value(), Brute > 0)
        << Q->str();
  }
}

TEST_P(RandomQueries, SynthesisSandwichAndVerification) {
  QueryGen Gen(GetParam() + 2000);
  Schema S = smallSchema();
  Box Top = Box::top(S);
  for (int I = 0; I != 8; ++I) {
    ExprRef Q = Gen.genQuery();
    auto Sy = Synthesizer::create(S, Q);
    ASSERT_TRUE(Sy.ok()) << Q->str();

    auto Under = Sy->synthesizeInterval(ApproxKind::Under);
    auto Over = Sy->synthesizeInterval(ApproxKind::Over);
    ASSERT_TRUE(Under.ok() && Over.ok()) << Q->str();

    BigCount Exact = countSatExact(*exprPredicate(Q), Top);
    EXPECT_TRUE(Under->TrueSet.volume() <= Exact) << Q->str();
    EXPECT_TRUE(Exact <= Over->TrueSet.volume()) << Q->str();

    RefinementChecker Checker(S, Q);
    EXPECT_TRUE(Checker.checkIndSets(*Under, ApproxKind::Under).valid())
        << Q->str();
    EXPECT_TRUE(Checker.checkIndSets(*Over, ApproxKind::Over).valid())
        << Q->str();

    auto PUnder = Sy->synthesizePowerset(ApproxKind::Under, 3);
    ASSERT_TRUE(PUnder.ok()) << Q->str();
    EXPECT_TRUE(Under->TrueSet.volume() <= PUnder->TrueSet.size())
        << Q->str();
    EXPECT_TRUE(PUnder->TrueSet.size() <= Exact) << Q->str();
  }
}

TEST_P(RandomQueries, BaselinePosteriorsLoseNoPoint) {
  QueryGen Gen(GetParam() + 3000);
  Schema S = smallSchema();
  AbstractInterpreter AI;
  Box Top = Box::top(S);
  for (int I = 0; I != 20; ++I) {
    ExprRef Q = Gen.genQuery();
    for (bool Response : {true, false}) {
      Box Post = AI.posterior(*Q, Top, Response);
      forEachPoint(Top, [&](const Point &P) {
        if (evalBool(*Q, P) == Response) {
          EXPECT_TRUE(Post.contains(P)) << Q->str();
        }
        return true;
      });
    }
  }
}

TEST_P(RandomQueries, DowngradeSequencesStaySound) {
  QueryGen Gen(GetParam() + 4000);
  Rng R(GetParam() ^ 0x5eed);
  Schema S = smallSchema();

  // Build a tracker with synthesized ind. sets for 4 random queries.
  KnowledgeTracker<PowerBox> T(S, permissivePolicy<PowerBox>());
  std::vector<ExprRef> Queries;
  for (int I = 0; I != 4; ++I) {
    ExprRef Q = Gen.genQuery();
    auto Sy = Synthesizer::create(S, Q);
    ASSERT_TRUE(Sy.ok());
    auto Sets = Sy->synthesizePowerset(ApproxKind::Under, 3);
    ASSERT_TRUE(Sets.ok());
    QueryInfo<PowerBox> Info;
    Info.Name = "q" + std::to_string(I);
    Info.QueryExpr = Q;
    Info.Ind = Sets.takeValue();
    T.registerQuery(std::move(Info));
    Queries.push_back(Q);
  }

  Point Secret{R.range(0, 24), R.range(0, 24)};
  PredicateRef TrueK = constPredicate(true);
  for (int I = 0; I != 4; ++I) {
    auto Res = T.downgrade(Secret, "q" + std::to_string(I));
    ASSERT_TRUE(Res.ok());
    EXPECT_EQ(*Res, evalBool(*Queries[I], Secret));
    PredicateRef QP = exprPredicate(Queries[I]);
    TrueK = andPredicate(TrueK, *Res ? QP : notPredicate(QP));
    // Tracked ⊆ true knowledge: no tracked point escapes K_i (§3).
    PowerBox Tracked = T.knowledgeFor(Secret);
    PredicateRef Escapee =
        andPredicate(inPowerBoxPredicate(Tracked), notPredicate(TrueK));
    EXPECT_TRUE(countSatExact(*Escapee, Box::top(S)).isZero())
        << "after " << I + 1 << " downgrades";
  }
}

TEST_P(RandomQueries, ParallelDecidersMatchSerial) {
  // Differential oracle: the parallel engine is the serial engine. Same
  // deterministic seeds as the other sweeps; a tiny cutoff volume forces
  // the decomposition path even on this small space.
  QueryGen Gen(GetParam() + 5000);
  Schema S = smallSchema();
  Box Top = Box::top(S);
  ThreadPool Pool(3);
  SolverParallel Par;
  Par.Pool = &Pool;
  Par.SequentialCutoffVolume = 1;
  Par.TasksPerThread = 4;
  for (int I = 0; I != 20; ++I) {
    ExprRef Q = Gen.genQuery();
    PredicateRef P = exprPredicate(Q);

    SolverBudget CountSerial, CountPar;
    CountResult CS = countSat(*P, Top, CountSerial);
    CountResult CP = countSat(*P, Top, CountPar, Par);
    EXPECT_EQ(CS.Count, CP.Count) << Q->str();
    EXPECT_EQ(CS.Exhausted, CP.Exhausted) << Q->str();
    EXPECT_EQ(CountSerial.used(), CountPar.used()) << Q->str();

    SolverBudget FaSerial, FaPar;
    ForallResult FS = checkForall(*P, Top, FaSerial);
    ForallResult FP = checkForall(*P, Top, FaPar, Par);
    EXPECT_EQ(FS.Holds, FP.Holds) << Q->str();
    EXPECT_EQ(FS.CounterExample, FP.CounterExample) << Q->str();

    SolverBudget ExSerial, ExPar;
    EXPECT_EQ(findWitness(*P, Top, ExSerial).Witness,
              findWitness(*P, Top, ExPar, Par).Witness)
        << Q->str();

    SolverBudget DvSerial, DvPar;
    EXPECT_EQ(findWitnessDiverse(*P, Top, GetParam(), DvSerial).Witness,
              findWitnessDiverse(*P, Top, GetParam(), DvPar, Par).Witness)
        << Q->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueries,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));
