//===- tests/synth/SketchTest.cpp - Sketch rendering tests ----------------===//

#include "synth/Sketch.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

} // namespace

TEST(Sketch, ApproxKindNames) {
  EXPECT_STREQ(approxKindName(ApproxKind::Under), "under");
  EXPECT_STREQ(approxKindName(ApproxKind::Over), "over");
}

TEST(Sketch, SpecUsesPaperNotation) {
  IndSetSketch SK("nearby", userLoc(), ApproxKind::Under);
  std::string Spec = SK.spec();
  // Fig. 4's positive index for the under ind. sets.
  EXPECT_NE(Spec.find("under_indset_nearby ::"), std::string::npos);
  EXPECT_NE(Spec.find("A<{\\x -> nearby x, true}>"), std::string::npos);
  EXPECT_NE(Spec.find("A<{\\x -> not (nearby x), true}>"),
            std::string::npos);
}

TEST(Sketch, OverSpecUsesNegativeIndex) {
  IndSetSketch SK("nearby", userLoc(), ApproxKind::Over);
  std::string Spec = SK.spec();
  EXPECT_NE(Spec.find("A<{true, \\x -> not (nearby x)}>"),
            std::string::npos);
}

TEST(Sketch, TemplateHasOneHolePerFieldPerSet) {
  IndSetSketch SK("nearby", userLoc(), ApproxKind::Under);
  std::string T = SK.renderTemplate();
  // Two fields -> holes l1/u1 and l2/u2, in both tuple components.
  size_t Count = 0;
  for (size_t Pos = T.find("?l1"); Pos != std::string::npos;
       Pos = T.find("?l1", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, 2u);
  EXPECT_NE(T.find("?u2"), std::string::npos);
}

TEST(Sketch, FilledIntervalProgramShowsBounds) {
  IndSetSketch SK("nearby", userLoc(), ApproxKind::Under);
  Box T({{121, 279}, {179, 221}});
  Box F({{0, 400}, {0, 99}});
  std::string Out = SK.renderFilled(T, F);
  // §2.2's under_indset literal.
  EXPECT_NE(Out.find("A [AInt 121 279, AInt 179 221]"), std::string::npos);
  EXPECT_NE(Out.find("A [AInt 0 400, AInt 0 99]"), std::string::npos);
}

TEST(Sketch, FilledEmptyDomainRendersBot) {
  IndSetSketch SK("q", userLoc(), ApproxKind::Under);
  std::string Out = SK.renderFilled(Box::bottom(2), Box::top(userLoc()));
  EXPECT_NE(Out.find("Bot"), std::string::npos);
}

TEST(Sketch, FilledPowersetShowsBothLists) {
  IndSetSketch SK("q", userLoc(), ApproxKind::Over);
  PowerBox T(2, {Box({{0, 10}, {0, 10}})}, {Box({{5, 6}, {5, 6}})});
  PowerBox F(2, {Box({{20, 30}, {20, 30}})}, {});
  std::string Out = SK.renderFilled(T, F);
  EXPECT_NE(Out.find("dom_i = [A [AInt 0 10, AInt 0 10]]"),
            std::string::npos);
  EXPECT_NE(Out.find("dom_o = [A [AInt 5 6, AInt 5 6]]"),
            std::string::npos);
  EXPECT_NE(Out.find("dom_o = []"), std::string::npos);
}
