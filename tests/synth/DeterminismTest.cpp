//===- tests/synth/DeterminismTest.cpp - Reproducibility tests ------------===//
//
// Every table and figure regenerates byte-identically (DESIGN.md §4);
// that rests on synthesis being a pure function of (query, options).
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "benchlib/Problems.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Determinism, IntervalSynthesisIsReproducible) {
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    auto Sy1 = Synthesizer::create(P.M.schema(), P.query().Body);
    auto Sy2 = Synthesizer::create(P.M.schema(), P.query().Body);
    ASSERT_TRUE(Sy1.ok() && Sy2.ok());
    for (ApproxKind Kind : {ApproxKind::Under, ApproxKind::Over}) {
      auto A = Sy1->synthesizeInterval(Kind);
      auto B = Sy2->synthesizeInterval(Kind);
      ASSERT_TRUE(A.ok() && B.ok()) << P.Id;
      EXPECT_EQ(A->TrueSet, B->TrueSet) << P.Id;
      EXPECT_EQ(A->FalseSet, B->FalseSet) << P.Id;
    }
  }
}

TEST(Determinism, PowersetSynthesisIsReproducible) {
  const BenchmarkProblem &NB = nearbyProblem();
  auto Sy = Synthesizer::create(NB.M.schema(),
                                NB.M.findQuery("nearby200")->Body);
  ASSERT_TRUE(Sy.ok());
  auto A = Sy->synthesizePowerset(ApproxKind::Under, 5);
  auto B = Sy->synthesizePowerset(ApproxKind::Under, 5);
  ASSERT_TRUE(A.ok() && B.ok());
  ASSERT_EQ(A->TrueSet.includes().size(), B->TrueSet.includes().size());
  for (size_t I = 0; I != A->TrueSet.includes().size(); ++I)
    EXPECT_EQ(A->TrueSet.includes()[I], B->TrueSet.includes()[I]);
}

TEST(Determinism, SeedChangesExploration) {
  // Different seeds may legitimately pick different maximal boxes; the
  // results must still all be correct. (Equality is not required — this
  // guards against the seed being silently ignored.)
  const BenchmarkProblem &NB = nearbyProblem();
  ExprRef Q = NB.M.findQuery("nearby200")->Body;
  SynthOptions O1, O2;
  O2.Seed = O1.Seed + 12345;
  auto S1 = Synthesizer::create(NB.M.schema(), Q, O1);
  auto S2 = Synthesizer::create(NB.M.schema(), Q, O2);
  auto A = S1->synthesizeInterval(ApproxKind::Under);
  auto B = S2->synthesizeInterval(ApproxKind::Under);
  ASSERT_TRUE(A.ok() && B.ok());
  // Both are maximal boxes inside the diamond.
  EXPECT_GT(A->TrueSet.volume().toInt64(), 0);
  EXPECT_GT(B->TrueSet.volume().toInt64(), 0);
}

TEST(Determinism, StatsAreStableAcrossRuns) {
  const BenchmarkProblem &B3 = benchmarkById("B3");
  auto Sy = Synthesizer::create(B3.M.schema(), B3.query().Body);
  SynthStats S1, S2;
  ASSERT_TRUE(Sy->synthesizeInterval(ApproxKind::Under, &S1).ok());
  ASSERT_TRUE(Sy->synthesizeInterval(ApproxKind::Under, &S2).ok());
  EXPECT_EQ(S1.SolverNodes, S2.SolverNodes);
  EXPECT_EQ(S1.BoxesSynthesized, S2.BoxesSynthesized);
}
