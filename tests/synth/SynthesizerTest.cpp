//===- tests/synth/SynthesizerTest.cpp - SYNTH/ITERSYNTH tests ------------===//

#include "synth/Synthesizer.h"

#include "expr/Parser.h"
#include "solver/ModelCounter.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

ExprRef q(const Schema &S, const std::string &Src) {
  auto R = parseQueryExpr(S, Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().str());
  return R.value();
}

Synthesizer makeSynth(const Schema &S, const std::string &Src,
                      SynthOptions Options = {}) {
  auto R = Synthesizer::create(S, q(S, Src), Options);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().str());
  return R.takeValue();
}

/// All members of an under ind. set must produce the polarity's response.
void expectUnderSound(const Schema &S, const ExprRef &Query, const Box &Dom,
                      bool Polarity) {
  SolverBudget Budget;
  PredicateRef P = exprPredicate(Query);
  if (!Polarity)
    P = notPredicate(P);
  EXPECT_TRUE(checkForall(*P, Dom, Budget).Holds)
      << "unsound under ind. set: " << Dom.str();
  (void)S;
}

} // namespace

TEST(Synthesizer, RejectsNonlinearQueries) {
  Schema S("S", {{"a", 0, 10}, {"b", 0, 10}});
  auto R = Synthesizer::create(S, q(S, "a * b <= 7"));
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().code(), ErrorCode::UnsupportedQuery);
}

TEST(Synthesizer, RejectsNullQuery) {
  EXPECT_FALSE(Synthesizer::create(userLoc(), nullptr).ok());
}

TEST(Synthesizer, IntervalUnderIsSoundAndNonTrivial) {
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "abs(x - 200) + abs(y - 200) <= 100");
  SynthStats Stats;
  auto Sets = Sy.synthesizeInterval(ApproxKind::Under, &Stats);
  ASSERT_TRUE(Sets.ok()) << Sets.error().str();
  expectUnderSound(S, Sy.query(), Sets->TrueSet, true);
  expectUnderSound(S, Sy.query(), Sets->FalseSet, false);
  EXPECT_FALSE(Sets->TrueSet.isEmpty());
  EXPECT_FALSE(Sets->FalseSet.isEmpty());
  EXPECT_GT(Stats.SolverNodes, 0u);
  EXPECT_EQ(Stats.BoxesSynthesized, 2u);
}

TEST(Synthesizer, IntervalOverIsExactBoundingBoxes) {
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "abs(x - 200) + abs(y - 200) <= 100");
  auto Sets = Sy.synthesizeInterval(ApproxKind::Over);
  ASSERT_TRUE(Sets.ok());
  EXPECT_EQ(Sets->TrueSet, Box({{100, 300}, {100, 300}}));
  // Every falsifying point exists up to the corners: over-False is ⊤.
  EXPECT_EQ(Sets->FalseSet, Box::top(S));
}

TEST(Synthesizer, ExactWhenIndSetIsABox) {
  // B1-style: the True set is a box, so under == over == exact (the 0 %
  // diff. rows of Fig. 5a).
  Schema S("Birthday", {{"bday", 0, 364}, {"byear", 1956, 1992}});
  Synthesizer Sy = makeSynth(S, "bday >= 260 && bday < 267");
  auto Under = Sy.synthesizeInterval(ApproxKind::Under);
  auto Over = Sy.synthesizeInterval(ApproxKind::Over);
  ASSERT_TRUE(Under.ok() && Over.ok());
  Box Expected({{260, 266}, {1956, 1992}});
  EXPECT_EQ(Under->TrueSet, Expected);
  EXPECT_EQ(Over->TrueSet, Expected);
  EXPECT_EQ(Under->TrueSet.volume().toInt64(), 259);
}

TEST(Synthesizer, UnderSandwichOverOnTrueSet) {
  // under ⊆ exact ⊆ over in cardinality.
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "abs(x - 123) + 2 * abs(y - 77) <= 90");
  auto Under = Sy.synthesizeInterval(ApproxKind::Under);
  auto Over = Sy.synthesizeInterval(ApproxKind::Over);
  ASSERT_TRUE(Under.ok() && Over.ok());
  BigCount Exact =
      countSatExact(*exprPredicate(Sy.query()), Box::top(S));
  EXPECT_TRUE(Under->TrueSet.volume() <= Exact);
  EXPECT_TRUE(Exact <= Over->TrueSet.volume());
}

TEST(Synthesizer, UnsatisfiableQueryGivesBottomUnder) {
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "x + y >= 5000");
  auto Under = Sy.synthesizeInterval(ApproxKind::Under);
  auto Over = Sy.synthesizeInterval(ApproxKind::Over);
  ASSERT_TRUE(Under.ok() && Over.ok());
  EXPECT_TRUE(Under->TrueSet.isEmpty());
  EXPECT_TRUE(Over->TrueSet.isEmpty());
  // The False response covers everything.
  EXPECT_EQ(Over->FalseSet, Box::top(S));
}

TEST(Synthesizer, PowersetUnderGrowsWithK) {
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "abs(x - 200) + abs(y - 200) <= 100");
  BigCount Exact = countSatExact(*exprPredicate(Sy.query()), Box::top(S));
  BigCount Prev;
  for (unsigned K : {1u, 2u, 3u, 5u}) {
    auto Sets = Sy.synthesizePowerset(ApproxKind::Under, K);
    ASSERT_TRUE(Sets.ok()) << Sets.error().str();
    BigCount Size = Sets->TrueSet.size();
    EXPECT_TRUE(Prev <= Size) << "precision must not drop with larger k";
    EXPECT_TRUE(Size <= Exact) << "under-approx exceeds the exact set";
    EXPECT_LE(Sets->TrueSet.includes().size(), K);
    Prev = Size;
  }
  // With several boxes we must beat the single-interval approximation.
  auto K1 = Sy.synthesizePowerset(ApproxKind::Under, 1);
  auto K5 = Sy.synthesizePowerset(ApproxKind::Under, 5);
  EXPECT_TRUE(K1->TrueSet.size() < K5->TrueSet.size());
}

TEST(Synthesizer, PowersetUnderCoversExactlyRepresentableSet) {
  // §6.1: "ANOSY successfully synthesizes both exact ind. sets for B1
  // using powersets, even though the False set was not representable
  // using just a single interval."
  Schema S("Birthday", {{"bday", 0, 364}, {"byear", 1956, 1992}});
  Synthesizer Sy = makeSynth(S, "bday >= 260 && bday < 267");
  auto Sets = Sy.synthesizePowerset(ApproxKind::Under, 3);
  ASSERT_TRUE(Sets.ok());
  EXPECT_EQ(Sets->TrueSet.size().toInt64(), 259);
  EXPECT_EQ(Sets->FalseSet.size().toInt64(), 13246); // two strips suffice
}

TEST(Synthesizer, PowersetOverShrinksWithK) {
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "abs(x - 200) + abs(y - 200) <= 100");
  BigCount Exact = countSatExact(*exprPredicate(Sy.query()), Box::top(S));
  BigCount Prev = BigCount::saturated();
  for (unsigned K : {1u, 2u, 3u, 5u}) {
    auto Sets = Sy.synthesizePowerset(ApproxKind::Over, K);
    ASSERT_TRUE(Sets.ok()) << Sets.error().str();
    BigCount Size = Sets->TrueSet.size();
    EXPECT_TRUE(Size <= Prev) << "precision must not drop with larger k";
    EXPECT_TRUE(Exact <= Size) << "over-approx misses satisfying points";
    Prev = Size;
  }
}

TEST(Synthesizer, PowersetK1MatchesInterval) {
  // §5.4: "for k=1 the returned powerset has a single interval" — the
  // general algorithm degenerates to SYNTH.
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "x <= 137 && y >= 40");
  auto PB = Sy.synthesizePowerset(ApproxKind::Under, 1);
  auto IB = Sy.synthesizeInterval(ApproxKind::Under);
  ASSERT_TRUE(PB.ok() && IB.ok());
  ASSERT_EQ(PB->TrueSet.includes().size(), 1u);
  EXPECT_EQ(PB->TrueSet.includes()[0], IB->TrueSet);
}

TEST(Synthesizer, PowersetStopsEarlyWhenRegionCovered) {
  // The True region is a single box; extra iterations have nothing to add.
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "x <= 100");
  auto Sets = Sy.synthesizePowerset(ApproxKind::Under, 5);
  ASSERT_TRUE(Sets.ok());
  EXPECT_EQ(Sets->TrueSet.includes().size(), 1u);
  EXPECT_EQ(Sets->TrueSet.size().toInt64(), 101 * 401);
}

TEST(Synthesizer, PowersetZeroKRejected) {
  Schema S = userLoc();
  Synthesizer Sy = makeSynth(S, "x <= 100");
  EXPECT_FALSE(Sy.synthesizePowerset(ApproxKind::Under, 0).ok());
}

TEST(Synthesizer, RelationalQuerySynthesizes) {
  // B2-style relational coupling: still sound, just harder.
  Schema S("Ship", {{"x", 0, 200}, {"y", 0, 100}, {"cap", 0, 20}});
  Synthesizer Sy =
      makeSynth(S, "abs(x - 100) + abs(y - 50) <= 20 + cap");
  auto Under = Sy.synthesizeInterval(ApproxKind::Under);
  ASSERT_TRUE(Under.ok());
  SolverBudget Budget;
  EXPECT_TRUE(
      checkForall(*exprPredicate(Sy.query()), Under->TrueSet, Budget).Holds);
  EXPECT_FALSE(Under->TrueSet.isEmpty());
}

TEST(Synthesizer, BudgetExhaustionSurfacesAsError) {
  Schema S = userLoc();
  SynthOptions Options;
  Options.MaxSolverNodes = 5;
  Synthesizer Sy =
      makeSynth(S, "abs(x - 200) + abs(y - 200) <= 100", Options);
  auto Sets = Sy.synthesizeInterval(ApproxKind::Under);
  ASSERT_FALSE(Sets.ok());
  EXPECT_EQ(Sets.error().code(), ErrorCode::BudgetExhausted);
}

TEST(Synthesizer, KeepPartialOnExhaustionReturnsSoundUnder) {
  Schema S = userLoc();
  SynthOptions Options;
  Options.MaxSolverNodes = 5;
  Options.KeepPartialOnExhaustion = true;
  Synthesizer Sy =
      makeSynth(S, "abs(x - 200) + abs(y - 200) <= 100", Options);
  SynthStats Stats;
  auto Sets = Sy.synthesizeInterval(ApproxKind::Under, &Stats);
  ASSERT_TRUE(Sets.ok());
  EXPECT_TRUE(Stats.Exhausted);
  // Whatever survived the budget must still be all-valid (⊥ trivially is).
  SolverBudget Budget;
  EXPECT_TRUE(
      checkForall(*exprPredicate(Sy.query()), Sets->TrueSet, Budget).Holds);
}

TEST(Synthesizer, KeepPartialOnExhaustionReturnsTopForOver) {
  Schema S = userLoc();
  SynthOptions Options;
  Options.MaxSolverNodes = 5;
  Options.KeepPartialOnExhaustion = true;
  Synthesizer Sy =
      makeSynth(S, "abs(x - 200) + abs(y - 200) <= 100", Options);
  SynthStats Stats;
  auto Sets = Sy.synthesizeInterval(ApproxKind::Over, &Stats);
  ASSERT_TRUE(Sets.ok());
  EXPECT_TRUE(Stats.Exhausted);
  // ⊤ covers every satisfying secret by construction.
  EXPECT_EQ(Sets->TrueSet, Box::top(S));
  EXPECT_EQ(Sets->FalseSet, Box::top(S));
}
