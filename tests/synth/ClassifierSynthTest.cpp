//===- tests/synth/ClassifierSynthTest.cpp - §5.1 extension tests ---------===//

#include "synth/ClassifierSynth.h"

#include "baselines/Exhaustive.h"
#include "expr/Eval.h"
#include "expr/Parser.h"
#include "solver/ModelCounter.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema ages() { return Schema("Person", {{"age", 0, 120}, {"zip", 0, 99}}); }

/// Age bands: 0 = minor, 1 = adult, 2 = senior.
ExprRef ageBand(const Schema &S) {
  auto R = parseQueryExpr(S, "age >= 0"); // placeholder to get sorts right
  (void)R;
  auto M = parseModule(R"(
    secret Person { age: int[0, 120], zip: int[0, 99] }
    classify band = if age < 18 then 0 else if age < 65 then 1 else 2
  )");
  EXPECT_TRUE(M.ok()) << (M.ok() ? "" : M.error().str());
  return M->classifiers().front().Body;
}

} // namespace

TEST(ClassifierSynth, ParsesClassifyDeclarations) {
  auto M = parseModule(R"(
    secret S { a: int[0, 10] }
    classify half = if a < 5 then 0 else 1
    query big = a > 8
  )");
  ASSERT_TRUE(M.ok()) << M.error().str();
  EXPECT_EQ(M->classifiers().size(), 1u);
  EXPECT_EQ(M->queries().size(), 1u);
  ASSERT_NE(M->findClassifier("half"), nullptr);
  EXPECT_EQ(M->findClassifier("nope"), nullptr);
  EXPECT_TRUE(M->findClassifier("half")->Body->isIntSorted());
}

TEST(ClassifierSynth, RejectsBooleanBody) {
  Schema S = ages();
  auto Q = parseQueryExpr(S, "age > 3");
  ASSERT_TRUE(Q.ok());
  auto C = ClassifierSynthesizer::create(S, Q.value());
  ASSERT_FALSE(C.ok());
  EXPECT_EQ(C.error().code(), ErrorCode::UnsupportedQuery);
}

TEST(ClassifierSynth, RejectsUnboundedOutputRange) {
  // The identity on a 121-value field exceeds the 64-output default cap:
  // "finitely many outputs" made concrete.
  Schema S = ages();
  auto C = ClassifierSynthesizer::create(S, fieldRef(0));
  ASSERT_FALSE(C.ok());
  EXPECT_NE(C.error().message().find("outputs"), std::string::npos);
}

TEST(ClassifierSynth, EnumeratesFeasibleOutputsOnly) {
  Schema S = ages();
  ExprRef Body = ageBand(S);
  auto C = ClassifierSynthesizer::create(S, Body);
  ASSERT_TRUE(C.ok()) << C.error().str();
  EXPECT_EQ(C->outputs(), (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(C->run({10, 50}), 0);
  EXPECT_EQ(C->run({30, 50}), 1);
  EXPECT_EQ(C->run({80, 50}), 2);
}

TEST(ClassifierSynth, InfeasibleOutputsDropped) {
  auto M = parseModule(R"(
    secret S { a: int[0, 10] }
    classify gap = if a < 5 then 0 else 7
  )");
  ASSERT_TRUE(M.ok());
  auto C = ClassifierSynthesizer::create(M->schema(),
                                         M->classifiers().front().Body);
  ASSERT_TRUE(C.ok()) << C.error().str();
  // The range analysis sees [0, 7] but only 0 and 7 are feasible.
  EXPECT_EQ(C->outputs(), (std::vector<int64_t>{0, 7}));
}

TEST(ClassifierSynth, IntervalIndSetsAreExactForBandedClassifier) {
  // Each band {x | band(x) = v} is a box, so SYNTH recovers it exactly.
  Schema S = ages();
  auto C = ClassifierSynthesizer::create(S, ageBand(S));
  ASSERT_TRUE(C.ok());
  auto Sets = C->synthesizeInterval(ApproxKind::Under);
  ASSERT_TRUE(Sets.ok()) << Sets.error().str();
  ASSERT_EQ(Sets->size(), 3u);
  EXPECT_EQ((*Sets)[0].Set, Box({{0, 17}, {0, 99}}));
  EXPECT_EQ((*Sets)[1].Set, Box({{18, 64}, {0, 99}}));
  EXPECT_EQ((*Sets)[2].Set, Box({{65, 120}, {0, 99}}));
}

TEST(ClassifierSynth, UnderIndSetsAreSound) {
  // Every member of an output's under ind. set maps to that output.
  auto M = parseModule(R"(
    secret S { a: int[0, 40], b: int[0, 40] }
    classify zone = (if abs(a - 20) + abs(b - 20) <= 10 then 10 else 0)
                  + (if a >= 30 then 1 else 0)
  )");
  ASSERT_TRUE(M.ok()) << M.error().str();
  auto C = ClassifierSynthesizer::create(M->schema(),
                                         M->classifiers().front().Body);
  ASSERT_TRUE(C.ok()) << C.error().str();
  auto Sets = C->synthesizePowerset(ApproxKind::Under, 3);
  ASSERT_TRUE(Sets.ok()) << Sets.error().str();
  BigCount Covered;
  for (const OutputIndSet<PowerBox> &O : *Sets) {
    forEachPoint(Box::top(M->schema()), [&](const Point &P) {
      if (O.Set.member(P)) {
        EXPECT_EQ(C->run(P), O.Value);
      }
      return true;
    });
    Covered = Covered + O.Set.size();
  }
  // The per-output sets are disjoint, so coverage is their sum; it cannot
  // exceed the domain.
  EXPECT_TRUE(Covered <= M->schema().totalSize());
}

TEST(ClassifierSynth, OverIndSetsCoverEachOutput) {
  Schema S = ages();
  auto C = ClassifierSynthesizer::create(S, ageBand(S));
  ASSERT_TRUE(C.ok());
  auto Sets = C->synthesizeInterval(ApproxKind::Over);
  ASSERT_TRUE(Sets.ok());
  for (const OutputIndSet<Box> &O : *Sets) {
    // Every secret mapping to O.Value lies inside O.Set.
    PredicateRef Is = exprPredicate(C->outputQuery(O.Value));
    PredicateRef Escapee =
        andPredicate(Is, notPredicate(inBoxPredicate(O.Set)));
    EXPECT_TRUE(countSatExact(*Escapee, Box::top(S)).isZero())
        << "output " << O.Value;
  }
}

TEST(ClassifierSynth, OutputQueryShape) {
  Schema S = ages();
  auto C = ClassifierSynthesizer::create(S, ageBand(S));
  ASSERT_TRUE(C.ok());
  ExprRef Q = C->outputQuery(1);
  EXPECT_TRUE(Q->isBoolSorted());
  EXPECT_TRUE(evalBool(*Q, {30, 5}));
  EXPECT_FALSE(evalBool(*Q, {80, 5}));
}
