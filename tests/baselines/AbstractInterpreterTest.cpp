//===- tests/baselines/AbstractInterpreterTest.cpp - AI baseline tests ----===//

#include "baselines/AbstractInterpreter.h"

#include "baselines/Exhaustive.h"
#include "expr/Eval.h"
#include "expr/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

ExprRef q(const Schema &S, const std::string &Src) {
  auto R = parseQueryExpr(S, Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().str());
  return R.value();
}

} // namespace

TEST(AbstractInterpreter, NarrowsSimpleComparison) {
  Schema S = userLoc();
  AbstractInterpreter AI;
  Box Post = AI.posterior(*q(S, "x <= 100"), Box::top(S), true);
  EXPECT_EQ(Post, Box({{0, 100}, {0, 400}}));
  Box PostF = AI.posterior(*q(S, "x <= 100"), Box::top(S), false);
  EXPECT_EQ(PostF, Box({{101, 400}, {0, 400}}));
}

TEST(AbstractInterpreter, NarrowsConjunctions) {
  Schema S = userLoc();
  AbstractInterpreter AI;
  Box Post = AI.posterior(
      *q(S, "x >= 50 && x <= 60 && y >= 10 && y <= 20"), Box::top(S), true);
  EXPECT_EQ(Post, Box({{50, 60}, {10, 20}}));
}

TEST(AbstractInterpreter, NarrowsThroughArithmetic) {
  Schema S = userLoc();
  AbstractInterpreter AI;
  // x + y <= 10 narrows both coordinates to [0, 10].
  Box Post = AI.posterior(*q(S, "x + y <= 10"), Box::top(S), true);
  EXPECT_EQ(Post, Box({{0, 10}, {0, 10}}));
  // 2*x <= 9 floors the division: x <= 4.
  Box Half = AI.posterior(*q(S, "2 * x <= 9"), Box::top(S), true);
  EXPECT_EQ(Half.dim(0), (Interval{0, 4}));
}

TEST(AbstractInterpreter, NarrowsEquality) {
  Schema S = userLoc();
  AbstractInterpreter AI;
  Box Post = AI.posterior(*q(S, "x == y"), Box({{10, 20}, {15, 30}}), true);
  EXPECT_EQ(Post, Box({{15, 20}, {15, 20}}));
}

TEST(AbstractInterpreter, InfeasibleResponseGivesEmpty) {
  Schema S = userLoc();
  AbstractInterpreter AI;
  EXPECT_TRUE(AI.posterior(*q(S, "x + y >= 5000"), Box::top(S), true)
                  .isEmpty());
  EXPECT_TRUE(
      AI.posterior(*q(S, "x >= 0"), Box::top(S), false).isEmpty());
}

TEST(AbstractInterpreter, DisjunctionHullsAreImprecise) {
  // The baseline's characteristic weakness: the disjunction forces a hull
  // spanning both blobs, unlike ANOSY's powerset which would keep them
  // separate.
  Schema S = userLoc();
  AbstractInterpreter AI;
  Box Post = AI.posterior(
      *q(S, "(x <= 10 && y <= 10) || (x >= 390 && y >= 390)"),
      Box::top(S), true);
  EXPECT_EQ(Post, Box::top(S)); // hull of the two corners
}

TEST(AbstractInterpreter, NearbyPosteriorIsSoundButLoose) {
  Schema S = userLoc();
  ExprRef Q = q(S, "abs(x - 200) + abs(y - 200) <= 100");
  AbstractInterpreter AI;
  Box Post = AI.posterior(*Q, Box::top(S), true);
  // Soundness: every truly-satisfying point is inside the posterior.
  EXPECT_TRUE(Box({{100, 300}, {100, 300}}).subsetOf(Post));
  // And it must narrow at least somewhat from ⊤.
  EXPECT_TRUE(Post.volume() < Box::top(S).volume());
}

TEST(AbstractInterpreter, SoundnessSweep) {
  // Over random priors and a mix of queries: every point of the prior
  // with the required response stays inside the narrowed posterior.
  Schema S("G", {{"a", 0, 30}, {"b", 0, 30}});
  std::vector<ExprRef> Queries{
      q(S, "a + b <= 20"),
      q(S, "abs(a - 15) + abs(b - 15) <= 8"),
      q(S, "a == 3 || b >= 25"),
      q(S, "min(a, b) >= 5 && max(a, b) <= 27"),
      q(S, "2 * a - 3 * b <= 1"),
      q(S, "a != b"),
      q(S, "(a >= 10 ==> b >= 10)"),
  };
  AbstractInterpreter AI;
  Rng Rand(31337);
  for (int Trial = 0; Trial != 25; ++Trial) {
    int64_t XL = Rand.range(0, 30), YL = Rand.range(0, 30);
    Box Prior({{XL, Rand.range(XL, 30)}, {YL, Rand.range(YL, 30)}});
    for (const ExprRef &Q : Queries)
      for (bool Response : {true, false}) {
        Box Post = AI.posterior(*Q, Prior, Response);
        forEachPoint(Prior, [&](const Point &P) {
          if (evalBool(*Q, P) == Response) {
            EXPECT_TRUE(Post.contains(P))
                << Q->str() << " response=" << Response << " prior "
                << Prior.str() << " lost point (" << P[0] << "," << P[1]
                << ")";
          }
          return true;
        });
      }
  }
}

TEST(AbstractInterpreter, PosteriorsPairMatchesSingleCalls) {
  Schema S = userLoc();
  ExprRef Q = q(S, "x <= 100");
  AbstractInterpreter AI;
  auto [T, F] = AI.posteriors(*Q, Box::top(S));
  EXPECT_EQ(T, AI.posterior(*Q, Box::top(S), true));
  EXPECT_EQ(F, AI.posterior(*Q, Box::top(S), false));
}
