//===- tests/baselines/ExhaustiveTest.cpp - Enumerator tests --------------===//

#include "baselines/Exhaustive.h"

#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Exhaustive, EnumeratesInLexOrder) {
  Box B({{0, 1}, {5, 6}});
  std::vector<Point> Pts = enumeratePoints(B);
  ASSERT_EQ(Pts.size(), 4u);
  EXPECT_EQ(Pts[0], (Point{0, 5}));
  EXPECT_EQ(Pts[1], (Point{0, 6}));
  EXPECT_EQ(Pts[2], (Point{1, 5}));
  EXPECT_EQ(Pts[3], (Point{1, 6}));
}

TEST(Exhaustive, EmptyBoxYieldsNothing) {
  EXPECT_TRUE(enumeratePoints(Box::bottom(2)).empty());
}

TEST(Exhaustive, SingletonBox) {
  std::vector<Point> Pts = enumeratePoints(Box::point({3, -7, 9}));
  ASSERT_EQ(Pts.size(), 1u);
  EXPECT_EQ(Pts[0], (Point{3, -7, 9}));
}

TEST(Exhaustive, EarlyStop) {
  int Seen = 0;
  forEachPoint(Box({{0, 9}}), [&Seen](const Point &) {
    ++Seen;
    return Seen < 3;
  });
  EXPECT_EQ(Seen, 3);
}

TEST(Exhaustive, CountByEnumerationMatchesClosedForm) {
  Schema S("L", {{"x", 0, 60}, {"y", 0, 60}});
  auto Q = parseQueryExpr(S, "abs(x - 30) + abs(y - 30) <= 10");
  ASSERT_TRUE(Q.ok());
  EXPECT_EQ(countByEnumeration(*Q.value(), Box::top(S)),
            2 * 10 * 10 + 2 * 10 + 1);
}

TEST(Exhaustive, ThreeDimensionalEnumeration) {
  Box B({{0, 2}, {0, 2}, {0, 2}});
  EXPECT_EQ(enumeratePoints(B).size(), 27u);
}
