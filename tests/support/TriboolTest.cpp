//===- tests/support/TriboolTest.cpp - Kleene logic unit tests ------------===//

#include "support/Tribool.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {
const Tribool T = Tribool::True;
const Tribool F = Tribool::False;
const Tribool U = Tribool::Unknown;
} // namespace

TEST(Tribool, OfBool) {
  EXPECT_EQ(triboolOf(true), T);
  EXPECT_EQ(triboolOf(false), F);
}

TEST(Tribool, NotTruthTable) {
  EXPECT_EQ(triNot(T), F);
  EXPECT_EQ(triNot(F), T);
  EXPECT_EQ(triNot(U), U);
}

TEST(Tribool, AndTruthTable) {
  EXPECT_EQ(triAnd(T, T), T);
  EXPECT_EQ(triAnd(T, F), F);
  EXPECT_EQ(triAnd(F, U), F); // false annihilates even Unknown
  EXPECT_EQ(triAnd(U, F), F);
  EXPECT_EQ(triAnd(T, U), U);
  EXPECT_EQ(triAnd(U, U), U);
}

TEST(Tribool, OrTruthTable) {
  EXPECT_EQ(triOr(F, F), F);
  EXPECT_EQ(triOr(T, U), T); // true absorbs even Unknown
  EXPECT_EQ(triOr(U, T), T);
  EXPECT_EQ(triOr(F, U), U);
  EXPECT_EQ(triOr(U, U), U);
}

TEST(Tribool, DeMorganHoldsInKleeneLogic) {
  for (Tribool A : {T, F, U})
    for (Tribool B : {T, F, U})
      EXPECT_EQ(triNot(triAnd(A, B)), triOr(triNot(A), triNot(B)));
}

TEST(Tribool, Names) {
  EXPECT_STREQ(triboolName(T), "true");
  EXPECT_STREQ(triboolName(F), "false");
  EXPECT_STREQ(triboolName(U), "unknown");
}
