//===- tests/support/RngTest.cpp - Rng unit tests --------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace anosy;

TEST(Rng, Deterministic) {
  Rng A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 4);
}

TEST(Rng, RangeStaysInBounds) {
  Rng R(99);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-50, 50);
    EXPECT_GE(V, -50);
    EXPECT_LE(V, 50);
  }
}

TEST(Rng, RangeSingleton) {
  Rng R(3);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(R.range(42, 42), 42);
}

TEST(Rng, RangeCoversValues) {
  Rng R(5);
  std::set<int64_t> Seen;
  for (int I = 0; I != 200; ++I)
    Seen.insert(R.range(0, 9));
  EXPECT_EQ(Seen.size(), 10u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}
