//===- tests/support/ParseNumTest.cpp - Strict flag parsing tests ---------===//

#include "support/ParseNum.h"

#include <gtest/gtest.h>

using namespace anosy;

// Regression for the CLI's unchecked atoi/strtoll sites: every token the
// old conversions silently misread must be a parse failure here.

TEST(ParseNum, Uint64AcceptsPlainDigits) {
  EXPECT_EQ(parseUint64("0"), 0u);
  EXPECT_EQ(parseUint64("42"), 42u);
  EXPECT_EQ(parseUint64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseNum, Uint64RejectsGarbage) {
  EXPECT_FALSE(parseUint64(""));
  EXPECT_FALSE(parseUint64("abc"));      // atoi: 0
  EXPECT_FALSE(parseUint64("1O"));       // atoi: 1
  EXPECT_FALSE(parseUint64("12 "));      // strtoull: 12
  EXPECT_FALSE(parseUint64(" 12"));
  EXPECT_FALSE(parseUint64("-1"));       // strtoull: wraps to UINT64_MAX
  EXPECT_FALSE(parseUint64("+7"));
  EXPECT_FALSE(parseUint64("0x10"));
  EXPECT_FALSE(parseUint64("3.5"));
}

TEST(ParseNum, Uint64RejectsOverflow) {
  EXPECT_FALSE(parseUint64("18446744073709551616")); // 2^64
  EXPECT_FALSE(parseUint64("99999999999999999999999"));
}

TEST(ParseNum, Int64CoversFullRange) {
  EXPECT_EQ(parseInt64("-9223372036854775808"), INT64_MIN);
  EXPECT_EQ(parseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parseInt64("-1"), -1);
  EXPECT_EQ(parseInt64("0"), 0);
}

TEST(ParseNum, Int64RejectsOutOfRangeAndGarbage) {
  EXPECT_FALSE(parseInt64("9223372036854775808"));   // INT64_MAX + 1
  EXPECT_FALSE(parseInt64("-9223372036854775809"));  // INT64_MIN - 1
  EXPECT_FALSE(parseInt64("-"));
  EXPECT_FALSE(parseInt64(""));
  EXPECT_FALSE(parseInt64("--5"));
  EXPECT_FALSE(parseInt64("12x"));                   // strtoll: 12
}

TEST(ParseNum, UnsignedRangeChecks) {
  EXPECT_EQ(parseUnsigned("4294967295"), 4294967295u);
  EXPECT_FALSE(parseUnsigned("4294967296")); // > UINT_MAX on LP64
  EXPECT_FALSE(parseUnsigned("-1"));
  EXPECT_FALSE(parseUnsigned("two"));
}
