//===- tests/support/TableTest.cpp - TextTable unit tests -----------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.setHeader({"#", "Name"});
  T.addRow({"B1", "Birthday"});
  T.addRow({"B2", "Ship"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("#   Name"), std::string::npos);
  EXPECT_NE(Out.find("B1  Birthday"), std::string::npos);
  EXPECT_NE(Out.find("B2  Ship"), std::string::npos);
}

TEST(TextTable, HeaderRule) {
  TextTable T;
  T.setHeader({"a", "b"});
  T.addRow({"1", "2"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("----"), std::string::npos);
}

TEST(TextTable, NoHeaderNoRule) {
  TextTable T;
  T.addRow({"1", "2"});
  std::string Out = T.render();
  EXPECT_EQ(Out.find("-"), std::string::npos);
}

TEST(TextTable, RaggedRows) {
  TextTable T;
  T.setHeader({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_NE(T.render().find("only"), std::string::npos);
}

TEST(TextTable, EmptyRendersEmpty) {
  TextTable T;
  EXPECT_EQ(T.render(), "");
}
