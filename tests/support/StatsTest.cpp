//===- tests/support/StatsTest.cpp - Stats helpers unit tests -------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MedianEmpty) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(Stats, MedianSingleton) { EXPECT_DOUBLE_EQ(median({7.5}), 7.5); }

TEST(Stats, SemiInterquartileOfUniform) {
  // 1..9: Q1 = 3, Q3 = 7, SIQR = 2.
  std::vector<double> S{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(semiInterquartile(S), 2.0);
}

TEST(Stats, SemiInterquartileConstantIsZero) {
  EXPECT_DOUBLE_EQ(semiInterquartile({4.0, 4.0, 4.0, 4.0}), 0.0);
}

TEST(Stats, MedianPlusMinusFormatting) {
  EXPECT_EQ(medianPlusMinus({1.0, 2.0, 3.0}, 1), "2.0 +- 0.5");
}

TEST(Stats, StopwatchAdvances) {
  Stopwatch W;
  volatile double Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + 1.0;
  EXPECT_GE(W.seconds(), 0.0);
}
