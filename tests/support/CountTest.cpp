//===- tests/support/CountTest.cpp - BigCount unit tests -------------------===//

#include "support/Count.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(BigCount, DefaultIsZero) {
  BigCount C;
  EXPECT_TRUE(C.isZero());
  EXPECT_FALSE(C.isSaturated());
  EXPECT_EQ(C.toInt64(), 0);
}

TEST(BigCount, OfIntervalBasics) {
  EXPECT_EQ(BigCount::ofInterval(0, 0).toInt64(), 1);
  EXPECT_EQ(BigCount::ofInterval(1, 10).toInt64(), 10);
  EXPECT_EQ(BigCount::ofInterval(-5, 5).toInt64(), 11);
  EXPECT_TRUE(BigCount::ofInterval(3, 2).isZero());
}

TEST(BigCount, OfIntervalFullInt64Range) {
  BigCount C = BigCount::ofInterval(INT64_MIN, INT64_MAX);
  EXPECT_FALSE(C.isSaturated());
  EXPECT_FALSE(C.fitsInt64());
  EXPECT_EQ(C.str(), "18446744073709551616"); // 2^64
}

TEST(BigCount, Addition) {
  EXPECT_EQ((BigCount(3) + BigCount(4)).toInt64(), 7);
  EXPECT_EQ((BigCount() + BigCount(9)).toInt64(), 9);
}

TEST(BigCount, Multiplication) {
  EXPECT_EQ((BigCount(6) * BigCount(7)).toInt64(), 42);
  EXPECT_TRUE((BigCount() * BigCount(7)).isZero());
  // The paper's Pizza domain: 112 * 25 * 100001^2.
  BigCount Pizza = BigCount(112) * BigCount(25) * BigCount(100001) *
                   BigCount(100001);
  EXPECT_EQ(Pizza.str(), "28000560002800");
  EXPECT_EQ(Pizza.sci(), "2.80e+13");
}

TEST(BigCount, SubtractionClampsAtZero) {
  EXPECT_EQ((BigCount(10) - BigCount(4)).toInt64(), 6);
  EXPECT_TRUE((BigCount(4) - BigCount(10)).isZero());
  EXPECT_TRUE((BigCount(4) - BigCount(4)).isZero());
}

TEST(BigCount, SaturationIsSticky) {
  BigCount Big = BigCount::ofInterval(INT64_MIN, INT64_MAX);
  BigCount Sat = Big * Big; // 2^128 overflows
  EXPECT_TRUE(Sat.isSaturated());
  EXPECT_TRUE((Sat + BigCount(1)).isSaturated());
  EXPECT_TRUE((Sat * BigCount(2)).isSaturated());
  EXPECT_TRUE((Sat - BigCount(5)).isSaturated());
  EXPECT_EQ(Sat.str(), ">=2^127");
}

TEST(BigCount, SaturatedComparesAboveEverything) {
  BigCount Sat = BigCount::saturated();
  EXPECT_TRUE(BigCount(INT64_MAX) < Sat);
  EXPECT_FALSE(Sat < BigCount(INT64_MAX));
  EXPECT_TRUE(Sat == BigCount::saturated());
}

TEST(BigCount, Ordering) {
  EXPECT_TRUE(BigCount(3) < BigCount(4));
  EXPECT_TRUE(BigCount(3) <= BigCount(3));
  EXPECT_TRUE(BigCount(5) > 4);
  EXPECT_TRUE(BigCount(5) >= 5);
  EXPECT_FALSE(BigCount(5) > 5);
  EXPECT_TRUE(BigCount(100) == 100);
}

TEST(BigCount, SciRendering) {
  EXPECT_EQ(BigCount(259).sci(), "259");
  EXPECT_EQ(BigCount(13246).sci(), "13246");
  EXPECT_EQ(BigCount(1370000).sci(), "1.37e+06");
  EXPECT_EQ(BigCount(100).sci(/*Threshold=*/10), "1.00e+02");
}

TEST(BigCount, ToDoubleLargeValues) {
  BigCount C = BigCount(1) * BigCount(INT64_MAX);
  EXPECT_NEAR(C.toDouble(), 9.22e18, 1e17);
}
