//===- tests/support/FaultInjectionTest.cpp - Fault harness tests ---------===//

#include "support/FaultInjection.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace anosy;

namespace {

/// RAII: every test leaves the harness disarmed, whatever happens.
struct FaultScope {
  ~FaultScope() { faults::reset(); }
};

FaultConfig singleSite(FaultSite Site, uint64_t OneIn, uint64_t Seed,
                       uint64_t MaxFaults = UINT64_MAX) {
  FaultConfig C;
  C.Seed = Seed;
  C.Sites[static_cast<unsigned>(Site)] = {OneIn, MaxFaults};
  return C;
}

} // namespace

TEST(FaultInjection, DisarmedByDefault) {
  FaultScope Scope;
  faults::reset();
  EXPECT_FALSE(faults::armed());
  // shouldFail on a disarmed harness never injects (and never counts).
  EXPECT_FALSE(faults::shouldFail(FaultSite::SolverCharge));
}

TEST(FaultInjection, SiteNamesRoundTrip) {
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    FaultSite Site = static_cast<FaultSite>(I);
    auto Back = faultSiteByName(faultSiteName(Site));
    ASSERT_TRUE(Back.has_value()) << faultSiteName(Site);
    EXPECT_EQ(*Back, Site);
  }
  EXPECT_FALSE(faultSiteByName("no-such-site").has_value());
}

TEST(FaultInjection, DeterministicReplay) {
  FaultScope Scope;
  const unsigned N = 2000;
  std::vector<bool> First, Second;
  for (int Round = 0; Round != 2; ++Round) {
    faults::configure(singleSite(FaultSite::SolverCharge, 7, 42));
    std::vector<bool> &Out = Round == 0 ? First : Second;
    for (unsigned I = 0; I != N; ++I)
      Out.push_back(faults::shouldFail(FaultSite::SolverCharge));
  }
  EXPECT_EQ(First, Second);
  // The rate is honored approximately (pure function of seed+index).
  size_t Injected = 0;
  for (bool B : First)
    Injected += B;
  EXPECT_GT(Injected, N / 20u);
  EXPECT_LT(Injected, N / 2u);
}

TEST(FaultInjection, SeedsChangeThePattern) {
  FaultScope Scope;
  auto Pattern = [](uint64_t Seed) {
    faults::configure(singleSite(FaultSite::GrowerRestart, 3, Seed));
    std::vector<bool> Out;
    for (unsigned I = 0; I != 500; ++I)
      Out.push_back(faults::shouldFail(FaultSite::GrowerRestart));
    return Out;
  };
  EXPECT_NE(Pattern(1), Pattern(2));
}

TEST(FaultInjection, MaxFaultsCapsInjections) {
  FaultScope Scope;
  faults::configure(singleSite(FaultSite::KbWrite, 1, 9, /*MaxFaults=*/3));
  unsigned Injected = 0;
  for (unsigned I = 0; I != 100; ++I)
    Injected += faults::shouldFail(FaultSite::KbWrite);
  EXPECT_EQ(Injected, 3u);
  EXPECT_EQ(faults::injected(FaultSite::KbWrite), 3u);
  EXPECT_EQ(faults::hits(FaultSite::KbWrite), 100u);
}

TEST(FaultInjection, SitesAreIndependent) {
  FaultScope Scope;
  faults::configure(singleSite(FaultSite::KbRead, 1, 5));
  EXPECT_TRUE(faults::shouldFail(FaultSite::KbRead));
  // Other sites stay quiet at rate 0.
  EXPECT_FALSE(faults::shouldFail(FaultSite::VerifierObligation));
  EXPECT_FALSE(faults::shouldFail(FaultSite::PoolTask));
}

TEST(FaultInjection, ParseSpecRoundTrips) {
  auto C = faults::parseSpec("seed=17,solver-charge@1000,kb-write@1x2");
  ASSERT_TRUE(C.ok()) << C.error().str();
  EXPECT_EQ(C->Seed, 17u);
  EXPECT_EQ(C->Sites[static_cast<unsigned>(FaultSite::SolverCharge)].OneIn,
            1000u);
  EXPECT_EQ(C->Sites[static_cast<unsigned>(FaultSite::KbWrite)].OneIn, 1u);
  EXPECT_EQ(C->Sites[static_cast<unsigned>(FaultSite::KbWrite)].MaxFaults,
            2u);
  EXPECT_TRUE(C->anyEnabled());
}

TEST(FaultInjection, ParseSpecRejectsGarbage) {
  EXPECT_FALSE(faults::parseSpec("bogus-site@3").ok());
  EXPECT_FALSE(faults::parseSpec("solver-charge@").ok());
  EXPECT_FALSE(faults::parseSpec("solver-charge@x").ok());
  EXPECT_FALSE(faults::parseSpec("seed=").ok());
}

TEST(FaultInjection, ResetDisarms) {
  FaultScope Scope;
  faults::configure(singleSite(FaultSite::SolverCharge, 1, 1));
  EXPECT_TRUE(faults::armed());
  faults::reset();
  EXPECT_FALSE(faults::armed());
  EXPECT_EQ(faults::hits(FaultSite::SolverCharge), 0u);
}

TEST(FaultInjection, ThreadSafeHitClaiming) {
  FaultScope Scope;
  faults::configure(singleSite(FaultSite::SolverCharge, 2, 3));
  constexpr unsigned PerThread = 5000;
  constexpr unsigned Threads = 4;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([] {
      for (unsigned I = 0; I != PerThread; ++I)
        faults::shouldFail(FaultSite::SolverCharge);
    });
  for (std::thread &W : Workers)
    W.join();
  // Every hit was claimed exactly once.
  EXPECT_EQ(faults::hits(FaultSite::SolverCharge), PerThread * Threads);
}

TEST(FaultInjection, PoolTaskFaultDemotesToInline) {
  FaultScope Scope;
  faults::configure(singleSite(FaultSite::PoolTask, 1, 11));
  ThreadPool Pool(4);
  std::atomic<int> OnSpawner{0};
  std::thread::id Spawner = std::this_thread::get_id();
  {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I != 16; ++I)
      G.spawn([&] {
        if (std::this_thread::get_id() == Spawner)
          OnSpawner.fetch_add(1, std::memory_order_relaxed);
      });
    G.wait();
  }
  // Rate 1: every spawn was demoted to inline execution on the spawner.
  EXPECT_EQ(OnSpawner.load(), 16);
}

TEST(FaultInjection, MixIsStableForSameSalt) {
  FaultScope Scope;
  faults::configure(singleSite(FaultSite::KbRead, 1, 77));
  EXPECT_EQ(faults::mix(123), faults::mix(123));
  EXPECT_NE(faults::mix(123), faults::mix(124));
}
