//===- tests/support/ResultTest.cpp - Result/Error unit tests -------------===//

#include "support/Result.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Result, ValueRoundtrip) {
  Result<int> R = 42;
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value(), 42);
  EXPECT_EQ(*R, 42);
}

TEST(Result, ErrorRoundtrip) {
  Result<int> R = Error(ErrorCode::PolicyViolation, "too revealing");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().code(), ErrorCode::PolicyViolation);
  EXPECT_EQ(R.error().message(), "too revealing");
  EXPECT_EQ(R.error().str(), "policy violation: too revealing");
}

TEST(Result, TakeValueMoves) {
  Result<std::string> R = std::string("knowledge");
  std::string S = R.takeValue();
  EXPECT_EQ(S, "knowledge");
}

TEST(Result, VoidSpecialization) {
  Result<void> Ok;
  EXPECT_TRUE(Ok.ok());
  Result<void> Bad = Error(ErrorCode::UnknownQuery, "Can't downgrade foo");
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.error().code(), ErrorCode::UnknownQuery);
}

TEST(Result, BoolConversion) {
  Result<int> Good = 1;
  Result<int> Bad = Error(ErrorCode::Other, "x");
  EXPECT_TRUE(static_cast<bool>(Good));
  EXPECT_FALSE(static_cast<bool>(Bad));
}

TEST(Result, AllErrorCodesHaveNames) {
  for (ErrorCode Code :
       {ErrorCode::ParseError, ErrorCode::UnsupportedQuery,
        ErrorCode::SynthesisFailure, ErrorCode::BudgetExhausted,
        ErrorCode::VerificationFailure,
        ErrorCode::PolicyViolation, ErrorCode::UnknownQuery,
        ErrorCode::LabelCheckFailure, ErrorCode::Other}) {
    EXPECT_NE(std::string(errorCodeName(Code)), "");
  }
}
