//===- tests/support/ThreadPoolTest.cpp - Pool unit + stress tests --------===//
//
// Fork-join semantics, nested task groups, early-exit cancellation,
// shared-budget exhaustion, and a 10k-task stress case. The whole file is
// expected to pass under ThreadSanitizer (the CI tsan job runs it).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "solver/Decide.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace anosy;

TEST(Parallelism, ResolvedAndSerial) {
  Parallelism Default;
  EXPECT_GE(Default.resolved(), 1u);

  Parallelism One{1};
  EXPECT_EQ(One.resolved(), 1u);
  EXPECT_TRUE(One.serial());

  Parallelism Four{4};
  EXPECT_EQ(Four.resolved(), 4u);
  EXPECT_FALSE(Four.serial());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(0, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0);
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    Calls.fetch_add(1);
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  // Threads == 1 is the serial contract: everything executes on the
  // calling thread, immediately.
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::thread::id Caller = std::this_thread::get_id();
  int Order = 0;
  ThreadPool::TaskGroup G(Pool);
  G.spawn([&] {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    EXPECT_EQ(Order, 0);
    Order = 1;
  });
  EXPECT_EQ(Order, 1); // Ran inline inside spawn, before wait.
  G.wait();
  Pool.parallelFor(5, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Order;
  });
  EXPECT_EQ(Order, 6);
}

TEST(ThreadPool, TaskGroupJoinsAllSpawns) {
  ThreadPool Pool(4);
  std::atomic<int> Done{0};
  {
    ThreadPool::TaskGroup G(Pool);
    for (int I = 0; I != 200; ++I)
      G.spawn([&] { Done.fetch_add(1); });
    G.wait();
    EXPECT_EQ(Done.load(), 200);
  }
  // Destructor join is idempotent after an explicit wait.
  EXPECT_EQ(Done.load(), 200);
}

TEST(ThreadPool, NestedForkJoinDoesNotDeadlock) {
  // Tasks that spawn subtasks and join them exercise the helping join: a
  // worker stuck in wait() must execute queued tasks, or a pool smaller
  // than the nesting width would deadlock.
  ThreadPool Pool(2);
  std::atomic<int> LeafCount{0};
  ThreadPool::TaskGroup Outer(Pool);
  for (int I = 0; I != 4; ++I) {
    Outer.spawn([&] {
      ThreadPool::TaskGroup Mid(Pool);
      for (int J = 0; J != 4; ++J) {
        Mid.spawn([&] {
          ThreadPool::TaskGroup Inner(Pool);
          for (int K = 0; K != 4; ++K)
            Inner.spawn([&] { LeafCount.fetch_add(1); });
          Inner.wait();
        });
      }
      Mid.wait();
    });
  }
  Outer.wait();
  EXPECT_EQ(LeafCount.load(), 4 * 4 * 4);
}

TEST(ThreadPool, EarlyExitCancellationSkipsLateWork) {
  // The solver's early-exit protocol: tasks check a shared atomic index
  // and skip their payload when a lower-index task has already decided
  // the search. The winner must always be the minimum deciding index.
  ThreadPool Pool(4);
  constexpr size_t N = 512;
  std::atomic<size_t> MinFound{N};
  std::atomic<size_t> Executed{0};
  Pool.parallelFor(N, [&](size_t I) {
    if (I > MinFound.load(std::memory_order_relaxed))
      return; // cancelled
    Executed.fetch_add(1);
    if (I % 7 == 3) { // the "found a witness" condition
      size_t Cur = MinFound.load();
      while (I < Cur && !MinFound.compare_exchange_weak(Cur, I))
        ;
    }
  });
  // Smallest index with I % 7 == 3 is 3; later tasks may or may not have
  // been cancelled, but the winner is deterministic.
  EXPECT_EQ(MinFound.load(), 3u);
  EXPECT_GE(Executed.load(), 1u);
  EXPECT_LE(Executed.load(), N);
}

TEST(ThreadPool, SharedBudgetExhaustionPropagates) {
  // Concurrent charges against one SolverBudget: exactly MaxNodes - 1
  // charges succeed (the one reaching the limit is rejected, as in the
  // serial contract), the counter never wraps past the limit, and every
  // task observes exhaustion afterwards.
  ThreadPool Pool(8);
  SolverBudget Budget(1000);
  std::atomic<uint64_t> Succeeded{0};
  Pool.parallelFor(16, [&](size_t) {
    while (Budget.charge())
      Succeeded.fetch_add(1);
    EXPECT_TRUE(Budget.exhausted());
  });
  EXPECT_EQ(Succeeded.load(), Budget.MaxNodes - 1);
  EXPECT_EQ(Budget.used(), Budget.MaxNodes);
  EXPECT_TRUE(Budget.exhausted());
  EXPECT_FALSE(Budget.charge());
  EXPECT_EQ(Budget.used(), Budget.MaxNodes); // saturated, no further adds
}

TEST(ThreadPool, BudgetChargeIsOverflowSafe) {
  // A counter close to UINT64_MAX must saturate, not wrap back below
  // MaxNodes (the bug this release fixes: wrapping NodesUsed turned an
  // exhausted budget back into "not exhausted").
  SolverBudget Budget(UINT64_MAX);
  Budget.NodesUsed.store(UINT64_MAX - 5);
  EXPECT_FALSE(Budget.charge(10)); // would overflow; clamps to UINT64_MAX
  EXPECT_EQ(Budget.used(), UINT64_MAX);
  EXPECT_TRUE(Budget.exhausted());
  EXPECT_FALSE(Budget.charge(10));
  EXPECT_EQ(Budget.used(), UINT64_MAX);

  SolverBudget Small(100);
  Small.NodesUsed.store(100);
  EXPECT_FALSE(Small.charge(UINT64_MAX)); // exhausted: nothing is added
  EXPECT_EQ(Small.used(), 100u);
}

TEST(ThreadPool, StressTenThousandTasks) {
  // 10k small tasks through task groups plus a concurrent parallelFor;
  // run under TSan in CI to certify the pool's synchronization.
  ThreadPool Pool(8);
  std::atomic<uint64_t> Sum{0};
  {
    ThreadPool::TaskGroup G(Pool);
    for (uint64_t I = 0; I != 10000; ++I)
      G.spawn([&Sum, I] { Sum.fetch_add(I + 1); });
    G.wait();
  }
  EXPECT_EQ(Sum.load(), 10000ull * 10001 / 2);

  std::atomic<uint64_t> Sum2{0};
  Pool.parallelFor(10000, [&](size_t I) { Sum2.fetch_add(I + 1); });
  EXPECT_EQ(Sum2.load(), 10000ull * 10001 / 2);
}

TEST(ThreadPool, PoolsAreIndependent) {
  // Two pools in flight at once: tasks spawned on one must not leak onto
  // the other's workers (each pool tracks its own deques and sleep CV).
  ThreadPool A(3), B(2);
  std::atomic<int> CA{0}, CB{0};
  ThreadPool::TaskGroup GA(A), GB(B);
  for (int I = 0; I != 100; ++I) {
    GA.spawn([&] { CA.fetch_add(1); });
    GB.spawn([&] { CB.fetch_add(1); });
  }
  GA.wait();
  GB.wait();
  EXPECT_EQ(CA.load(), 100);
  EXPECT_EQ(CB.load(), 100);
}
