//===- tests/benchlib/ProblemsTest.cpp - Benchmark definition tests -------===//

#include "benchlib/Problems.h"

#include "expr/Eval.h"
#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Problems, IdsAndNamesStable) {
  const auto &Ps = mardzielBenchmarks();
  ASSERT_EQ(Ps.size(), 5u);
  const char *Ids[] = {"B1", "B2", "B3", "B4", "B5"};
  const char *Names[] = {"Birthday", "Ship", "Photo", "Pizza", "Travel"};
  for (size_t I = 0; I != 5; ++I) {
    EXPECT_EQ(Ps[I].Id, Ids[I]);
    EXPECT_EQ(Ps[I].Name, Names[I]);
    EXPECT_FALSE(Ps[I].Description.empty());
    EXPECT_FALSE(Ps[I].Source.empty());
  }
}

TEST(Problems, SourcesReparseToSameSemantics) {
  // The stored Source must be the module each problem was built from.
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    auto M = parseModule(P.Source);
    ASSERT_TRUE(M.ok()) << P.Id;
    EXPECT_EQ(M->schema().totalSize(), P.M.schema().totalSize()) << P.Id;
    EXPECT_TRUE(Expr::structurallyEqual(*M->queries().front().Body,
                                        *P.query().Body))
        << P.Id;
  }
}

TEST(Problems, B1QuerySemantics) {
  const BenchmarkProblem &B1 = benchmarkById("B1");
  EXPECT_TRUE(evalBool(*B1.query().Body, {260, 1980}));
  EXPECT_TRUE(evalBool(*B1.query().Body, {266, 1956}));
  EXPECT_FALSE(evalBool(*B1.query().Body, {267, 1980}));
  EXPECT_FALSE(evalBool(*B1.query().Body, {259, 1980}));
}

TEST(Problems, B2CapacityDependence) {
  const BenchmarkProblem &B2 = benchmarkById("B2");
  // At distance 80 from the island, capacity 5 suffices, 4 does not.
  EXPECT_TRUE(evalBool(*B2.query().Body, {580, 250, 5}));
  EXPECT_FALSE(evalBool(*B2.query().Body, {581, 250, 5}));
  EXPECT_TRUE(evalBool(*B2.query().Body, {420, 250, 5}));
}

TEST(Problems, B5PointwiseCountries) {
  const BenchmarkProblem &B5 = benchmarkById("B5");
  // lang=0, edu=9, country=33, age=30 -> interested.
  EXPECT_TRUE(evalBool(*B5.query().Body, {0, 9, 33, 30}));
  // Wrong country.
  EXPECT_FALSE(evalBool(*B5.query().Body, {0, 9, 34, 30}));
  // Too young.
  EXPECT_FALSE(evalBool(*B5.query().Body, {0, 9, 33, 21}));
}

TEST(Problems, NearbyProblemHasTraceQueries) {
  const BenchmarkProblem &NB = nearbyProblem();
  EXPECT_NE(NB.M.findQuery("nearby200"), nullptr);
  EXPECT_NE(NB.M.findQuery("nearby300"), nullptr);
  EXPECT_NE(NB.M.findQuery("nearby400"), nullptr);
}

TEST(Problems, LookupByIdIsStable) {
  EXPECT_EQ(&benchmarkById("B3"), &benchmarkById("B3"));
}
