//===- tests/benchlib/AdvertisingTest.cpp - §6.2 driver tests -------------===//

#include "benchlib/Advertising.h"

#include "expr/Eval.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace anosy;

TEST(Advertising, ModuleShape) {
  AdvertisingConfig Config;
  Config.NumRestaurants = 7;
  Module M = buildAdvertisingModule(Config);
  EXPECT_EQ(M.schema().arity(), 2u);
  ASSERT_EQ(M.queries().size(), 7u);
  for (unsigned I = 0; I != 7; ++I)
    EXPECT_EQ(M.queries()[I].Name, "restaurant" + std::to_string(I));
}

TEST(Advertising, OriginsInsideSpace) {
  AdvertisingConfig Config;
  Config.NumRestaurants = 10;
  Module M = buildAdvertisingModule(Config);
  // Every query is satisfied at its own origin (distance 0), so a brute
  // scan must find at least one satisfying point per query.
  for (const QueryDef &Q : M.queries()) {
    bool Any = false;
    for (int64_t X = 0; X <= 400 && !Any; X += 5)
      for (int64_t Y = 0; Y <= 400 && !Any; Y += 5)
        Any = evalBool(*Q.Body, {X, Y});
    EXPECT_TRUE(Any) << Q.Name;
  }
}

TEST(Advertising, SeedControlsModule) {
  AdvertisingConfig A, B;
  A.NumRestaurants = B.NumRestaurants = 5;
  B.Seed = A.Seed + 1;
  Module MA = buildAdvertisingModule(A);
  Module MB = buildAdvertisingModule(B);
  bool AnyDiff = false;
  for (size_t I = 0; I != 5; ++I)
    AnyDiff = AnyDiff || !Expr::structurallyEqual(*MA.queries()[I].Body,
                                                  *MB.queries()[I].Body);
  EXPECT_TRUE(AnyDiff);
}

TEST(Advertising, ResultInvariants) {
  AdvertisingConfig Config;
  Config.NumRestaurants = 8;
  Config.NumInstances = 4;
  Config.PowersetSize = 2;
  AdvertisingResult R = runAdvertisingExperiment(Config);
  ASSERT_EQ(R.Survivors.size(), 8u);
  ASSERT_EQ(R.AnsweredPerInstance.size(), 4u);
  // Survivors are non-increasing and consistent with per-instance counts.
  for (size_t I = 1; I != R.Survivors.size(); ++I)
    EXPECT_LE(R.Survivors[I], R.Survivors[I - 1]);
  for (unsigned Q = 0; Q != 8; ++Q) {
    unsigned FromInstances = 0;
    for (unsigned A : R.AnsweredPerInstance)
      if (A > Q)
        ++FromInstances;
    EXPECT_EQ(R.Survivors[Q], FromInstances) << "query " << Q;
  }
  EXPECT_EQ(R.maxAnswered(),
            *std::max_element(R.AnsweredPerInstance.begin(),
                              R.AnsweredPerInstance.end()));
}

TEST(Advertising, PaperSizeSemanticsIsMorePermissive) {
  AdvertisingConfig Exact;
  Exact.NumRestaurants = 10;
  Exact.NumInstances = 5;
  Exact.PowersetSize = 4;
  AdvertisingConfig Paper = Exact;
  Paper.PaperSizeSemantics = true;
  // Σ-based sizes over-count overlap, so they can only authorize at
  // least as many queries as exact cardinalities.
  EXPECT_GE(runAdvertisingExperiment(Paper).meanAnswered(),
            runAdvertisingExperiment(Exact).meanAnswered());
}

TEST(Advertising, DeterministicAcrossRuns) {
  AdvertisingConfig Config;
  Config.NumRestaurants = 6;
  Config.NumInstances = 3;
  Config.PowersetSize = 2;
  AdvertisingResult A = runAdvertisingExperiment(Config);
  AdvertisingResult B = runAdvertisingExperiment(Config);
  EXPECT_EQ(A.Survivors, B.Survivors);
  EXPECT_EQ(A.AnsweredPerInstance, B.AnsweredPerInstance);
}
