//===- tests/integration/CorpusSoakTest.cpp - Corpus soak runner ----------===//
//
// The generator-driven soak suite (DESIGN.md §9), ctest label `soak`.
// Three sweeps, each sized by an environment knob so the CI corpus-soak
// job can scale them up while plain ctest stays fast:
//
//   ANOSY_CORPUS_SEED      base corpus seed        (default 1)
//   ANOSY_CORPUS_SESSIONS  oracle-checked replays  (default 12)
//   ANOSY_FAULT_SCENARIOS  randomized fault configs (default 6)
//
// Plus the fixture replay: every checked-in trace under tests/corpus/
// must replay against the exhaustive oracle with zero mismatches.
//
//===----------------------------------------------------------------------===//

#include "expr/Parser.h"
#include "gen/Corpus.h"
#include "gen/Oracle.h"
#include "gen/ScenarioGen.h"
#include "gen/TraceGen.h"
#include "support/FaultInjection.h"
#include "support/ParseNum.h"
#include "support/Rng.h"

#include "../gen/CorpusFixture.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace anosy;

namespace {

uint64_t envOr(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (V == nullptr || *V == '\0')
    return Default;
  auto N = parseUint64(V);
  EXPECT_TRUE(N.has_value()) << Name << "='" << V << "' is not a number";
  return N.value_or(Default);
}

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In.good()) << P;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void expectReplayClean(const Module &M, const GeneratedTrace &T,
                       const std::string &Context) {
  ReplayResult R = replayWithOracle(M, T);
  EXPECT_TRUE(R.ok()) << Context << "/" << T.Name << ": "
                      << (R.Mismatches.empty() ? "" : R.Mismatches[0]);
}

} // namespace

// Sweep 1: rotating-seed corpora, every trace oracle-replayed end to end.
TEST(CorpusSoak, GeneratedCorporaReplayClean) {
  uint64_t Seed = envOr("ANOSY_CORPUS_SEED", 1);
  uint64_t Sessions = envOr("ANOSY_CORPUS_SESSIONS", 12);
  CorpusOptions Shape;
  Shape.ModulesPerFamily = 1;
  Shape.TracesPerModule = 2;
  Shape.StepsPerTrace = 10;
  Shape.MaxDomainSize = 2'500;
  uint64_t Ran = 0, Round = 0;
  while (Ran < Sessions) {
    Shape.Seed = Seed + Round++;
    auto C = generateCorpus(Shape);
    ASSERT_TRUE(C.ok()) << C.error().str();
    for (const CorpusEntry &E : C->Entries) {
      for (const GeneratedTrace &T : E.Traces) {
        if (Ran++ >= Sessions)
          return;
        expectReplayClean(E.Parsed, T,
                          "seed " + std::to_string(Shape.Seed));
      }
    }
  }
}

// Sweep 2: the lint scorecard must stay sound (zero false positives on
// either static claim) across every module of a rotating corpus.
TEST(CorpusSoak, LintScorecardStaysSound) {
  CorpusOptions Shape;
  Shape.Seed = envOr("ANOSY_CORPUS_SEED", 1);
  Shape.ModulesPerFamily = 2;
  Shape.MaxDomainSize = 2'500;
  auto C = generateCorpus(Shape);
  ASSERT_TRUE(C.ok()) << C.error().str();
  LintScore Total;
  for (const CorpusEntry &E : C->Entries) {
    GroundTruth GT = computeGroundTruth(E.Parsed);
    LintScore S = scoreLint(E.Parsed, E.Mod.PolicyMinSize, GT);
    EXPECT_TRUE(S.sound())
        << E.Mod.Name << ": const FP " << S.ConstFP << ", reject FP "
        << S.RejectFP;
    Total.merge(S);
  }
  EXPECT_GT(Total.QueriesScored, 0u);
  EXPECT_EQ(Total.ConstFP, 0u);
  EXPECT_EQ(Total.RejectFP, 0u);
}

// Sweep 3: the PR-2 fault harness under randomized configurations. Every
// injection site degrades to a path the system already tolerates, so an
// oracle-shadowed replay must stay mismatch-free no matter which faults
// fire — degraded (refused/⊥) is fine, unsound is not.
TEST(CorpusSoak, FaultSweepStaysSound) {
  uint64_t Base = envOr("ANOSY_CORPUS_SEED", 1) * 1'000'003ULL;
  uint64_t Scenarios = envOr("ANOSY_FAULT_SCENARIOS", 6);
  for (uint64_t I = 0; I != Scenarios; ++I) {
    uint64_t Seed = Base + I;
    Rng R(Seed ^ 0xfa017ULL);
    FaultConfig FC;
    FC.Seed = Seed;
    bool Any = false;
    for (unsigned S = 0; S != NumFaultSites; ++S) {
      if (R.range(0, 2) == 0)
        continue;
      FC.Sites[S].OneIn = static_cast<uint64_t>(1) << R.range(0, 6);
      FC.Sites[S].MaxFaults = static_cast<uint64_t>(R.range(0, 3));
      Any = true;
    }
    if (!Any)
      FC.Sites[static_cast<unsigned>(FaultSite::SolverCharge)].OneIn = 4;

    ScenarioOptions SOpt;
    SOpt.Family = static_cast<ScenarioFamily>(Seed % NumScenarioFamilies);
    SOpt.Seed = Seed;
    SOpt.MaxDomainSize = 2'000;
    GeneratedModule Mod = generateScenarioModule(SOpt);
    auto M = parseModule(Mod.Source);
    ASSERT_TRUE(M.ok()) << Mod.Name;
    TracePolicy Policy;
    Policy.MinSize = SOpt.PolicyMinSize;
    GeneratedTrace T = generateTrace(
        *M, Mod.Name,
        static_cast<AttackerStrategy>((Seed / 3) % NumAttackerStrategies),
        Policy, Seed, 8);

    faults::configure(FC);
    ReplayResult Replay = replayWithOracle(*M, T);
    faults::reset();
    EXPECT_TRUE(Replay.ok())
        << "fault scenario seed " << Seed << ": "
        << (Replay.Mismatches.empty() ? "" : Replay.Mismatches[0]);
  }
  faults::reset();
}

// The curated fixtures: every checked-in trace replays green. Also pins
// the pairing — each trace's `module` line must name a checked-in module.
TEST(CorpusSoak, FixturesReplayClean) {
  namespace fs = std::filesystem;
  fs::path Dir(ANOSY_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;

  std::map<std::string, Module> Modules;
  size_t Traces = 0;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir)) {
    if (DE.path().extension() != ".anosy")
      continue;
    auto M = parseModule(slurp(DE.path()));
    ASSERT_TRUE(M.ok()) << DE.path() << ": " << M.error().str();
    Modules.emplace(DE.path().stem().string(), *M);
  }
  EXPECT_FALSE(Modules.empty()) << "no .anosy fixtures in " << Dir;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir)) {
    if (DE.path().extension() != ".trace")
      continue;
    auto T = parseTrace(slurp(DE.path()));
    ASSERT_TRUE(T.ok()) << DE.path() << ": " << T.error().str();
    auto It = Modules.find(T->ModuleName);
    ASSERT_TRUE(It != Modules.end())
        << DE.path() << " names missing module " << T->ModuleName;
    expectReplayClean(It->second, *T, "fixture");
    ++Traces;
  }
  // The fixture set is exactly the recorded corpus shape.
  CorpusOptions Opt = fixtureCorpusOptions();
  EXPECT_EQ(Modules.size(),
            static_cast<size_t>(NumScenarioFamilies) * Opt.ModulesPerFamily);
  EXPECT_EQ(Traces, Modules.size() * Opt.TracesPerModule);
}
