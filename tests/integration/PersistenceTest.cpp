//===- tests/integration/PersistenceTest.cpp - Deploy-cycle tests ---------===//
//
// End-to-end deployment cycle: synthesize+verify at "build time", export
// the knowledge base, reload it in a fresh process-like context, and run
// the §3 enforcement trace without re-synthesizing — including random
// knowledge bases from the fuzz generator.
//
//===----------------------------------------------------------------------===//

#include "core/ArtifactIO.h"

#include "gen/QueryGen.h"
#include "benchlib/Problems.h"
#include "core/KnowledgeTracker.h"
#include "synth/Synthesizer.h"
#include "verify/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Persistence, NearbyTraceThroughExportReload) {
  const BenchmarkProblem &NB = nearbyProblem();
  const Schema &S = NB.M.schema();

  // Build time: synthesize and export.
  std::vector<QueryInfo<PowerBox>> Infos;
  for (const QueryDef &Q : NB.M.queries()) {
    auto Sy = Synthesizer::create(S, Q.Body);
    ASSERT_TRUE(Sy.ok());
    auto Sets = Sy->synthesizePowerset(ApproxKind::Under, 5);
    ASSERT_TRUE(Sets.ok());
    Infos.push_back({Q.Name, Q.Body, Sets.takeValue(), ApproxKind::Under});
  }
  std::string KBText = serializeKnowledgeBase(S, Infos);

  // Deploy time: reload and enforce the §3 trace.
  auto KB = parseKnowledgeBase<PowerBox>(KBText);
  ASSERT_TRUE(KB.ok()) << KB.error().str();
  KnowledgeTracker<PowerBox> T(KB->S, minSizePolicy<PowerBox>(100));
  for (QueryInfo<PowerBox> &Info : KB->Queries)
    T.registerQuery(std::move(Info));

  Point Secret{300, 200};
  EXPECT_TRUE(T.downgrade(Secret, "nearby200").ok());
  EXPECT_TRUE(T.downgrade(Secret, "nearby300").ok());
  auto R3 = T.downgrade(Secret, "nearby400");
  ASSERT_FALSE(R3.ok());
  EXPECT_EQ(R3.error().code(), ErrorCode::PolicyViolation);
}

namespace {
class RandomKnowledgeBases : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(RandomKnowledgeBases, RoundTripPreservesArtifacts) {
  QueryGenConfig Config;
  Config.ConstLo = -20;
  Config.ConstHi = 20;
  QueryGen Gen(GetParam(), Config);
  Schema S("F", {{"a", 0, 24}, {"b", 0, 24}});

  std::vector<QueryInfo<PowerBox>> Infos;
  for (int I = 0; I != 5; ++I) {
    ExprRef Q = Gen.genQuery();
    auto Sy = Synthesizer::create(S, Q);
    ASSERT_TRUE(Sy.ok());
    auto Sets = Sy->synthesizePowerset(ApproxKind::Under, 3);
    ASSERT_TRUE(Sets.ok());
    Infos.push_back({"q" + std::to_string(I), Q, Sets.takeValue(),
                     ApproxKind::Under});
  }

  auto KB = parseKnowledgeBase<PowerBox>(serializeKnowledgeBase(S, Infos));
  ASSERT_TRUE(KB.ok()) << KB.error().str();
  ASSERT_EQ(KB->Queries.size(), Infos.size());
  for (size_t I = 0; I != Infos.size(); ++I) {
    // Domains round-trip to semantically equal sets.
    EXPECT_TRUE(KB->Queries[I].Ind.TrueSet == Infos[I].Ind.TrueSet)
        << Infos[I].QueryExpr->str(S);
    EXPECT_TRUE(KB->Queries[I].Ind.FalseSet == Infos[I].Ind.FalseSet);
    // Reloaded artifacts still pass the refinement checker (the bodies
    // round-tripped through the printer/parser).
    RefinementChecker Checker(KB->S, KB->Queries[I].QueryExpr);
    EXPECT_TRUE(
        Checker.checkIndSets(KB->Queries[I].Ind, ApproxKind::Under).valid())
        << Infos[I].QueryExpr->str(S);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKnowledgeBases,
                         ::testing::Values(17, 29, 71, 113));
