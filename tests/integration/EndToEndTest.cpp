//===- tests/integration/EndToEndTest.cpp - Full-pipeline tests -----------===//

#include "benchlib/Advertising.h"
#include "benchlib/Problems.h"

#include "core/AnosyT.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(EndToEnd, AdvertisingModuleIsDeterministic) {
  AdvertisingConfig Config;
  Config.NumRestaurants = 5;
  Module A = buildAdvertisingModule(Config);
  Module B = buildAdvertisingModule(Config);
  ASSERT_EQ(A.queries().size(), 5u);
  for (size_t I = 0; I != 5; ++I)
    EXPECT_TRUE(Expr::structurallyEqual(*A.queries()[I].Body,
                                        *B.queries()[I].Body));
}

TEST(EndToEnd, AdvertisingExperimentSmall) {
  // A scaled-down Fig. 6 run: survivors must be monotonically
  // non-increasing in the query index, and every instance stops at its
  // first violation.
  AdvertisingConfig Config;
  Config.NumRestaurants = 12;
  Config.NumInstances = 6;
  Config.PowersetSize = 2;
  AdvertisingResult R = runAdvertisingExperiment(Config);
  ASSERT_EQ(R.Survivors.size(), 12u);
  ASSERT_EQ(R.AnsweredPerInstance.size(), 6u);
  EXPECT_EQ(R.Survivors[0], 6u) << "the first query is always authorized";
  for (size_t I = 1; I != R.Survivors.size(); ++I)
    EXPECT_LE(R.Survivors[I], R.Survivors[I - 1]);
  unsigned MaxAnswered = R.maxAnswered();
  EXPECT_GE(MaxAnswered, 1u);
  for (unsigned A : R.AnsweredPerInstance)
    EXPECT_LE(A, 12u);
}

TEST(EndToEnd, LargerPowersetAnswersAtLeastAsMany) {
  // The Fig. 6 headline on a reduced workload: k = 4 must (weakly) beat
  // k = 1 in total queries answered.
  AdvertisingConfig Small;
  Small.NumRestaurants = 10;
  Small.NumInstances = 5;
  Small.PowersetSize = 1;
  AdvertisingConfig Big = Small;
  Big.PowersetSize = 4;
  double MeanSmall = runAdvertisingExperiment(Small).meanAnswered();
  double MeanBig = runAdvertisingExperiment(Big).meanAnswered();
  EXPECT_GE(MeanBig, MeanSmall);
}

TEST(EndToEnd, FullStackWithIfcSubstrate) {
  // The complete §2 story: protected location -> AnosyT downgrade ->
  // public ad decision, with the IFC substrate enforcing that the secret
  // itself never flows to the public channel.
  const BenchmarkProblem &NB = nearbyProblem();
  SessionOptions Options;
  Options.PowersetSize = 3;
  auto Session = AnosySession<PowerBox>::create(
      NB.M, minSizePolicy<PowerBox>(100), Options);
  ASSERT_TRUE(Session.ok()) << Session.error().str();

  SecureContext<Point, SecurityLevel> Ctx;
  AnosyT<PowerBox, SecurityLevel> Monad(Session->tracker(), Ctx);
  auto Secret =
      Ctx.labelValue({300, 200}, SecurityLevel(SecurityLevel::Secret));
  ASSERT_TRUE(Secret.ok());

  // showAdNear: downgrade, then emit the ad decision publicly.
  std::vector<Point> PublicChannel;
  auto IsNear = Monad.downgrade(*Secret, "nearby200");
  ASSERT_TRUE(IsNear.ok());
  EXPECT_TRUE(
      Ctx.output(SecurityLevel(SecurityLevel::Public),
                 {*IsNear ? 1 : 0, 0}, &PublicChannel)
          .ok());
  ASSERT_EQ(PublicChannel.size(), 1u);

  // Attempting to output the raw secret is still blocked by the IFC
  // layer: unlabel taints, output rejects.
  auto Raw = Ctx.unlabel(*Secret);
  ASSERT_TRUE(Raw.ok());
  EXPECT_FALSE(Ctx.output(SecurityLevel(SecurityLevel::Public), *Raw,
                          &PublicChannel)
                   .ok());
  EXPECT_EQ(PublicChannel.size(), 1u);
}

TEST(EndToEnd, SynthesizedSourceArtifactsRender) {
  const BenchmarkProblem &B1 = benchmarkById("B1");
  auto Session =
      AnosySession<Box>::create(B1.M, permissivePolicy<Box>());
  ASSERT_TRUE(Session.ok()) << Session.error().str();
  const auto *Art = Session->artifacts(B1.query().Name);
  ASSERT_NE(Art, nullptr);
  // The synthesized literal is B1's exact True box (§6.1: exact for B1).
  EXPECT_NE(Art->SynthesizedSource.find("AInt 260 266"),
            std::string::npos);
}
