//===- tests/integration/BenchmarkSuiteTest.cpp - B1-B5 suite tests -------===//

#include "benchlib/Problems.h"

#include "expr/Analysis.h"
#include "solver/ModelCounter.h"
#include "synth/Synthesizer.h"
#include "verify/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(BenchmarkSuite, AllFiveProblemsLoad) {
  const auto &Ps = mardzielBenchmarks();
  ASSERT_EQ(Ps.size(), 5u);
  EXPECT_EQ(Ps[0].Id, "B1");
  EXPECT_EQ(Ps[4].Name, "Travel");
  for (const BenchmarkProblem &P : Ps)
    EXPECT_FALSE(P.M.queries().empty()) << P.Id;
}

TEST(BenchmarkSuite, FieldCountsMatchTable1) {
  // Table 1's "No. of fields" column: 2, 3, 3, 4, 4.
  EXPECT_EQ(benchmarkById("B1").M.schema().arity(), 2u);
  EXPECT_EQ(benchmarkById("B2").M.schema().arity(), 3u);
  EXPECT_EQ(benchmarkById("B3").M.schema().arity(), 3u);
  EXPECT_EQ(benchmarkById("B4").M.schema().arity(), 4u);
  EXPECT_EQ(benchmarkById("B5").M.schema().arity(), 4u);
}

TEST(BenchmarkSuite, AllQueriesInsideFragment) {
  for (const BenchmarkProblem &P : mardzielBenchmarks())
    EXPECT_TRUE(
        admitQuery(*P.query().Body, P.M.schema().arity()).ok())
        << P.Id;
}

TEST(BenchmarkSuite, B1ExactSizesPinnedToPaper) {
  const BenchmarkProblem &B1 = benchmarkById("B1");
  Box Top = Box::top(B1.M.schema());
  PredicateRef Q = exprPredicate(B1.query().Body);
  EXPECT_EQ(countSatExact(*Q, Top).toInt64(), 259);
  EXPECT_EQ(countSatExact(*notPredicate(Q), Top).toInt64(), 13246);
}

TEST(BenchmarkSuite, B3ExactSizesPinnedToPaper) {
  const BenchmarkProblem &B3 = benchmarkById("B3");
  Box Top = Box::top(B3.M.schema());
  PredicateRef Q = exprPredicate(B3.query().Body);
  EXPECT_EQ(countSatExact(*Q, Top).toInt64(), 4);
  EXPECT_EQ(countSatExact(*notPredicate(Q), Top).toInt64(), 884);
}

TEST(BenchmarkSuite, OrdersOfMagnitudeMatchTable1) {
  // B2 ~ 1e6 / 2.4e7; B4 ~ 1.4e10 / 2.8e13; B5 ~ 2e3 / 6.7e6. We assert
  // the (coarser) decades, since the exact Mardziel encodings are not in
  // the paper.
  struct Row {
    const char *Id;
    double TrueLo, TrueHi, FalseLo, FalseHi;
  };
  const Row Rows[] = {
      {"B2", 1e5, 1e7, 1e7, 1e8},
      {"B4", 1e9, 1e11, 1e13, 1e14},
      {"B5", 1e2, 1e4, 1e6, 1e7},
  };
  for (const Row &R : Rows) {
    const BenchmarkProblem &P = benchmarkById(R.Id);
    Box Top = Box::top(P.M.schema());
    PredicateRef Q = exprPredicate(P.query().Body);
    double T = countSatExact(*Q, Top).toDouble();
    double F = countSatExact(*notPredicate(Q), Top).toDouble();
    EXPECT_GE(T, R.TrueLo) << R.Id;
    EXPECT_LE(T, R.TrueHi) << R.Id;
    EXPECT_GE(F, R.FalseLo) << R.Id;
    EXPECT_LE(F, R.FalseHi) << R.Id;
  }
}

TEST(BenchmarkSuite, B2IsRelationalOthersAreNot) {
  // §6.1 singles out B2 as "a relational query that creates a dependency
  // between two secret fields".
  EXPECT_TRUE(analyzeQuery(*benchmarkById("B2").query().Body).Relational);
  EXPECT_FALSE(analyzeQuery(*benchmarkById("B1").query().Body).Relational);
  EXPECT_FALSE(analyzeQuery(*benchmarkById("B3").query().Body).Relational);
  EXPECT_FALSE(analyzeQuery(*benchmarkById("B5").query().Body).Relational);
}

TEST(BenchmarkSuite, NearbyProblemTracksPaperNumbers) {
  const BenchmarkProblem &NB = nearbyProblem();
  EXPECT_EQ(NB.M.queries().size(), 3u);
  PredicateRef Q = exprPredicate(NB.M.findQuery("nearby200")->Body);
  EXPECT_EQ(countSatExact(*Q, Box::top(NB.M.schema())).toInt64(), 20201);
}

namespace {

/// Interval synthesis sandwich sweep, one benchmark per TEST_P instance:
/// under ⊆ exact ⊆ over for both responses, verified end-to-end.
class SuiteSynthesis : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(SuiteSynthesis, IntervalSandwichAndVerification) {
  const BenchmarkProblem &P = benchmarkById(GetParam());
  const Schema &S = P.M.schema();
  auto Sy = Synthesizer::create(S, P.query().Body);
  ASSERT_TRUE(Sy.ok()) << Sy.error().str();

  auto Under = Sy->synthesizeInterval(ApproxKind::Under);
  auto Over = Sy->synthesizeInterval(ApproxKind::Over);
  ASSERT_TRUE(Under.ok()) << Under.error().str();
  ASSERT_TRUE(Over.ok()) << Over.error().str();

  PredicateRef Q = exprPredicate(P.query().Body);
  Box Top = Box::top(S);
  BigCount ExactT = countSatExact(*Q, Top);
  BigCount ExactF = countSatExact(*notPredicate(Q), Top);

  EXPECT_TRUE(Under->TrueSet.volume() <= ExactT);
  EXPECT_TRUE(ExactT <= Over->TrueSet.volume());
  EXPECT_TRUE(Under->FalseSet.volume() <= ExactF);
  EXPECT_TRUE(ExactF <= Over->FalseSet.volume());

  RefinementChecker Checker(S, P.query().Body);
  EXPECT_TRUE(Checker.checkIndSets(*Under, ApproxKind::Under).valid());
  EXPECT_TRUE(Checker.checkIndSets(*Over, ApproxKind::Over).valid());
}

TEST_P(SuiteSynthesis, PowersetK3RefinesInterval) {
  // Fig. 5b vs 5a: the k=3 powerset is at least as precise as the single
  // interval for under-approximations.
  const BenchmarkProblem &P = benchmarkById(GetParam());
  auto Sy = Synthesizer::create(P.M.schema(), P.query().Body);
  ASSERT_TRUE(Sy.ok());
  auto Interval = Sy->synthesizeInterval(ApproxKind::Under);
  auto Powerset = Sy->synthesizePowerset(ApproxKind::Under, 3);
  ASSERT_TRUE(Interval.ok() && Powerset.ok());
  EXPECT_TRUE(Interval->TrueSet.volume() <= Powerset->TrueSet.size());
  EXPECT_TRUE(Interval->FalseSet.volume() <= Powerset->FalseSet.size());

  RefinementChecker Checker(P.M.schema(), P.query().Body);
  EXPECT_TRUE(Checker.checkIndSets(*Powerset, ApproxKind::Under).valid());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteSynthesis,
                         ::testing::Values("B1", "B2", "B3", "B4", "B5"));
