# Regression harness for the CLI's strict numeric-flag parsing. Each bad
# invocation must exit with the usage status (2) and name the offending
# flag — the pre-fix atoi/strtoll code accepted all of these silently.
# Run via:  ctest -R cli_rejects_bad_numerics
if(NOT DEFINED ANOSY_CLI)
  message(FATAL_ERROR "pass -DANOSY_CLI=<path to anosy_cli>")
endif()

function(expect_parse_error flag)
  execute_process(
    COMMAND ${ANOSY_CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
      "anosy_cli ${ARGN}: expected exit 2, got ${rc}\nstderr: ${err}")
  endif()
  if(NOT err MATCHES "invalid value for ${flag}")
    message(FATAL_ERROR
      "anosy_cli ${ARGN}: stderr does not name ${flag}: ${err}")
  endif()
endfunction()

expect_parse_error("--k" --k abc)
expect_parse_error("--k" --k 0)            # zero boxes is not a powerset
expect_parse_error("--threads" --threads 1O)
expect_parse_error("--threads" --threads=-2)
expect_parse_error("--timeout-ms" --timeout-ms 10s)
expect_parse_error("--max-session-nodes" --max-session-nodes 99999999999999999999)
expect_parse_error("--retry" --retry x7)
expect_parse_error("--min-size" --min-size 12x)
expect_parse_error("--min-size" lint --min-size abc)
expect_parse_error("--threads" lint --threads abc)

# A good invocation still runs end to end (built-in module, no files).
execute_process(
  COMMAND ${ANOSY_CLI} --threads 2 --k 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "good invocation failed (${rc}): ${err}")
endif()
