//===- tests/integration/FaultInjectionSuiteTest.cpp - Fault suite --------===//
//
// The DESIGN.md §6 acceptance suite: every fault site, under several
// seeds, injected while a real session synthesizes, verifies, persists,
// and reloads knowledge. The invariants under test:
//
//   1. Session creation never fails because of an injected resource
//      fault — it degrades (GracefulDegradation).
//   2. Every surviving artifact is *sound*: a fresh, fault-free
//      refinement check accepts it (⊥ passes vacuously).
//   3. Downgrades are identical to a clean session's, or conservative
//      rejections — never an extra accept — as long as the degraded
//      artifacts are ⊥ (partial non-⊥ artifacts are sound but
//      incomparable decision-wise, so comparison stops there).
//   4. Knowledge-base faults (torn writes, bit rot) never corrupt the
//      *previous* state and are always detected on load.
//
//===----------------------------------------------------------------------===//

#include "core/AnosySession.h"

#include "expr/Parser.h"
#include "support/FaultInjection.h"
#include "verify/RefinementChecker.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace anosy;

namespace {

struct FaultScope {
  ~FaultScope() { faults::reset(); }
};

const uint64_t Seeds[] = {1, 2, 3};

Module nearbyModule() {
  auto M = parseModule(R"(
    secret UserLoc { x: int[0, 400], y: int[0, 400] }
    def nearby(ox: int, oy: int): bool = abs(x - ox) + abs(y - oy) <= 100
    query nearby200 = nearby(200, 200)
    query nearby300 = nearby(300, 200)
    query nearby400 = nearby(400, 200)
  )");
  EXPECT_TRUE(M.ok());
  return M.takeValue();
}

SessionOptions faultTolerantOptions() {
  SessionOptions Options;
  Options.Retry.MaxAttempts = 3;
  Options.Retry.BudgetGrowth = 4.0;
  return Options;
}

/// Creates a session with \p Site armed at rate 1-in-\p OneIn under
/// \p Seed, then disarms. EXPECTs creation success and returns the
/// session (unset on failure).
std::optional<AnosySession<Box>>
createUnderFault(FaultSite Site, uint64_t OneIn, uint64_t Seed,
                 SessionOptions Options = faultTolerantOptions()) {
  FaultConfig C;
  C.Seed = Seed;
  C.Sites[static_cast<unsigned>(Site)] = {OneIn, UINT64_MAX};
  faults::configure(C);
  auto S = AnosySession<Box>::create(nearbyModule(),
                                     minSizePolicy<Box>(100), Options);
  faults::reset();
  EXPECT_TRUE(S.ok()) << faultSiteName(Site) << " seed " << Seed << ": "
                      << (S.ok() ? "" : S.error().str());
  if (!S.ok())
    return std::nullopt;
  return std::optional<AnosySession<Box>>(S.takeValue());
}

/// Fault-free refinement check of every artifact the session holds.
void expectAllArtifactsSound(AnosySession<Box> &S, const char *Ctx) {
  ASSERT_FALSE(faults::armed());
  for (const QueryDef &Q : S.module().queries()) {
    const QueryArtifacts<Box> *Art = S.artifacts(Q.Name);
    ASSERT_NE(Art, nullptr) << Ctx << ": " << Q.Name;
    RefinementChecker Checker(S.module().schema(), Q.Body);
    EXPECT_TRUE(Checker.checkIndSets(Art->Ind, ApproxKind::Under).valid())
        << Ctx << ": " << Q.Name
        << (Art->Degradation ? " (degraded: " + Art->Degradation->str() + ")"
                             : " (not degraded)");
  }
}

/// Declaration-order differential downgrade against a clean session.
/// Comparison is meaningful while every faulted artifact encountered is
/// either identical to the clean one or the ⊥ fallback; a partial non-⊥
/// degraded artifact ends the comparable prefix.
void expectConservativeDowngrades(AnosySession<Box> &Faulted,
                                  AnosySession<Box> &Clean,
                                  const char *Ctx) {
  Point Secret{300, 200};
  for (const QueryDef &Q : Faulted.module().queries()) {
    const QueryArtifacts<Box> *FArt = Faulted.artifacts(Q.Name);
    const QueryArtifacts<Box> *CArt = Clean.artifacts(Q.Name);
    ASSERT_NE(FArt, nullptr);
    ASSERT_NE(CArt, nullptr);
    bool Identical = FArt->Ind.TrueSet == CArt->Ind.TrueSet &&
                     FArt->Ind.FalseSet == CArt->Ind.FalseSet;
    bool Bottom = FArt->Ind.TrueSet.isEmpty() && FArt->Ind.FalseSet.isEmpty();
    if (!Identical && !Bottom)
      break; // Sound partial artifact: decisions diverge legitimately.
    auto F = Faulted.downgrade(Secret, Q.Name);
    auto C = Clean.downgrade(Secret, Q.Name);
    if (F.ok()) {
      // Never an extra accept: the faulted session only answers when the
      // clean one does, and with the same value.
      ASSERT_TRUE(C.ok()) << Ctx << ": faulted session accepted '" << Q.Name
                          << "' which the clean session rejects";
      EXPECT_EQ(*F, *C) << Ctx << ": " << Q.Name;
    } else if (C.ok()) {
      break; // Conservative rejection; states diverge from here on.
    }
  }
}

} // namespace

// --- Invariants 1 + 2 + 3 across every site and seed -------------------

TEST(FaultSuite, AllSitesAllSeedsSessionsSurviveAndStaySound) {
  FaultScope Scope;
  for (unsigned SiteI = 0; SiteI != NumFaultSites; ++SiteI) {
    FaultSite Site = static_cast<FaultSite>(SiteI);
    for (uint64_t Seed : Seeds) {
      SCOPED_TRACE(std::string(faultSiteName(Site)) + " seed " +
                   std::to_string(Seed));
      auto S = createUnderFault(Site, /*OneIn=*/50, Seed);
      ASSERT_TRUE(S.has_value());
      expectAllArtifactsSound(*S, faultSiteName(Site));
      // Fresh clean session per round: downgrades mutate tracker state.
      auto Clean = AnosySession<Box>::create(nearbyModule(),
                                             minSizePolicy<Box>(100));
      ASSERT_TRUE(Clean.ok()) << Clean.error().str();
      expectConservativeDowngrades(*S, *Clean, faultSiteName(Site));
    }
  }
}

TEST(FaultSuite, HighFaultRatesStillDegradeGracefully) {
  // Rate 1-in-5 on the solver's own charge path is brutal — most passes
  // die. The session must still come up, all-⊥ at worst.
  FaultScope Scope;
  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    auto S = createUnderFault(FaultSite::SolverCharge, /*OneIn=*/5, Seed);
    ASSERT_TRUE(S.has_value());
    expectAllArtifactsSound(*S, "solver-charge@5");
  }
}

TEST(FaultSuite, VerifierFaultsNeverForgeCertificates) {
  // An injected verifier fault yields an *undecided* obligation, never a
  // valid one: every certificate a faulted session reports as valid must
  // re-check cleanly.
  FaultScope Scope;
  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    auto S =
        createUnderFault(FaultSite::VerifierObligation, /*OneIn=*/3, Seed);
    ASSERT_TRUE(S.has_value());
    for (const QueryDef &Q : S->module().queries()) {
      const QueryArtifacts<Box> *Art = S->artifacts(Q.Name);
      ASSERT_NE(Art, nullptr);
      EXPECT_TRUE(Art->Certificates.valid()) << Q.Name;
    }
    expectAllArtifactsSound(*S, "verifier-obligation@3");
  }
}

// --- Invariant 4: knowledge-base faults --------------------------------

TEST(FaultSuite, TornWritesNeverCorruptTheDeployedKnowledgeBase) {
  FaultScope Scope;
  auto S = AnosySession<Box>::create(nearbyModule(),
                                     minSizePolicy<Box>(100));
  ASSERT_TRUE(S.ok());
  std::string Path =
      testing::TempDir() + "anosy_fault_suite_torn.akb";
  std::string Original = S->exportKnowledgeBase();
  ASSERT_TRUE(writeKnowledgeBaseFileAtomic(Path, Original).ok());

  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    FaultConfig C;
    C.Seed = Seed;
    C.Sites[static_cast<unsigned>(FaultSite::KbWrite)] = {1, UINT64_MAX};
    faults::configure(C);
    EXPECT_FALSE(writeKnowledgeBaseFileAtomic(Path, "doomed write").ok());
    faults::reset();
    auto Back = readKnowledgeBaseFile(Path);
    ASSERT_TRUE(Back.ok());
    EXPECT_EQ(*Back, Original);
    auto Reloaded = AnosySession<Box>::createFromKnowledgeBase(
        *Back, minSizePolicy<Box>(100));
    ASSERT_TRUE(Reloaded.ok());
    EXPECT_FALSE(Reloaded->degradation().degraded());
  }
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

TEST(FaultSuite, DirFsyncFaultReportsErrorButNeverTearsTheDestination) {
  // The kb-dir-fsync site models power loss with the rename still only in
  // the parent directory's page cache. The contract is asymmetric to a
  // torn write: the *destination* already holds the complete new content
  // (rename happened), but the writer must report Error so callers retry
  // until the rename is known durable. A retry is idempotent — same
  // bytes, same path — so the recovery story is "call it again".
  FaultScope Scope;
  std::string Path = testing::TempDir() + "anosy_fault_suite_dirsync.akb";
  const std::string Old = "previous state\n";
  const std::string New = "next state\n";
  ASSERT_TRUE(writeKnowledgeBaseFileAtomic(Path, Old).ok());

  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    FaultConfig C;
    C.Seed = Seed;
    C.Sites[static_cast<unsigned>(FaultSite::KbDirFsync)] = {1, UINT64_MAX};
    faults::configure(C);
    auto W = writeKnowledgeBaseFileAtomic(Path, New);
    ASSERT_FALSE(W.ok());
    EXPECT_NE(W.error().message().find("kb-dir-fsync"), std::string::npos);
    faults::reset();
    // Never torn: the destination is the complete new content (the
    // rename landed), not the old content and not a mix.
    auto Back = readKnowledgeBaseFile(Path);
    ASSERT_TRUE(Back.ok());
    EXPECT_EQ(*Back, New);
    // The idempotent retry under a healthy directory succeeds.
    EXPECT_TRUE(writeKnowledgeBaseFileAtomic(Path, New).ok());
    ASSERT_TRUE(writeKnowledgeBaseFileAtomic(Path, Old).ok());
  }
  std::remove(Path.c_str());
}

TEST(FaultSuite, BitRotOnReadIsDetectedAndRepairedBySalvage) {
  FaultScope Scope;
  auto S = AnosySession<Box>::create(nearbyModule(),
                                     minSizePolicy<Box>(100));
  ASSERT_TRUE(S.ok());
  std::string Path = testing::TempDir() + "anosy_fault_suite_rot.akb";
  ASSERT_TRUE(
      writeKnowledgeBaseFileAtomic(Path, S->exportKnowledgeBase()).ok());

  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    FaultConfig C;
    C.Seed = Seed;
    C.Sites[static_cast<unsigned>(FaultSite::KbRead)] = {1, UINT64_MAX};
    faults::configure(C);
    auto Rotten = readKnowledgeBaseFile(Path);
    faults::reset();
    ASSERT_TRUE(Rotten.ok());
    // The flip is always caught by the strict parser...
    EXPECT_FALSE(parseKnowledgeBase<Box>(*Rotten).ok());
    // ...and salvage + resynthesis restores a sound session whenever the
    // header and schema survive (the flip may land on those two lines, in
    // which case refusing to load is the correct outcome).
    auto Reloaded = AnosySession<Box>::createFromKnowledgeBase(
        *Rotten, minSizePolicy<Box>(100));
    if (Reloaded.ok())
      expectAllArtifactsSound(*Reloaded, "kb-read salvage");
  }
  std::remove(Path.c_str());
}

// --- Pool faults: demoted tasks, identical artifacts -------------------

TEST(FaultSuite, PoolTaskFaultsNeverChangeArtifacts) {
  // Task-spawn faults demote work to inline execution — a scheduling
  // change only. Artifacts must be byte-identical to the serial clean
  // session's at any thread count.
  FaultScope Scope;
  auto Serial = AnosySession<Box>::create(nearbyModule(),
                                          minSizePolicy<Box>(100));
  ASSERT_TRUE(Serial.ok());

  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    FaultConfig C;
    C.Seed = Seed;
    C.Sites[static_cast<unsigned>(FaultSite::PoolTask)] = {2, UINT64_MAX};
    faults::configure(C);
    SessionOptions Options;
    Options.Par.Threads = 4;
    auto S = AnosySession<Box>::create(nearbyModule(),
                                       minSizePolicy<Box>(100), Options);
    faults::reset();
    ASSERT_TRUE(S.ok()) << S.error().str();
    EXPECT_FALSE(S->degradation().degraded());
    for (const QueryDef &Q : S->module().queries()) {
      const QueryArtifacts<Box> *A = S->artifacts(Q.Name);
      const QueryArtifacts<Box> *B = Serial->artifacts(Q.Name);
      ASSERT_NE(A, nullptr);
      ASSERT_NE(B, nullptr);
      EXPECT_EQ(A->Ind.TrueSet, B->Ind.TrueSet) << Q.Name;
      EXPECT_EQ(A->Ind.FalseSet, B->Ind.FalseSet) << Q.Name;
      EXPECT_EQ(A->SynthesizedSource, B->SynthesizedSource) << Q.Name;
    }
  }
}

// --- Full pipeline under faults: synthesize → export → reload ----------

TEST(FaultSuite, EndToEndPipelineSurvivesEverySite) {
  FaultScope Scope;
  std::string Path = testing::TempDir() + "anosy_fault_suite_e2e.akb";
  for (uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    // Everything armed at a low rate simultaneously.
    FaultConfig C;
    C.Seed = Seed;
    for (unsigned I = 0; I != NumFaultSites; ++I)
      C.Sites[I] = {100, UINT64_MAX};
    faults::configure(C);

    auto S = AnosySession<Box>::create(nearbyModule(),
                                       minSizePolicy<Box>(100),
                                       faultTolerantOptions());
    ASSERT_TRUE(S.ok()) << S.error().str();
    std::string Text = S->exportKnowledgeBase();
    // The atomic writer may tear (kb-write site): retry until it lands.
    bool Written = false;
    for (int Try = 0; Try != 8 && !Written; ++Try)
      Written = writeKnowledgeBaseFileAtomic(Path, Text).ok();
    faults::reset();
    ASSERT_TRUE(Written);

    auto Back = readKnowledgeBaseFile(Path);
    ASSERT_TRUE(Back.ok());
    auto Reloaded = AnosySession<Box>::createFromKnowledgeBase(
        *Back, minSizePolicy<Box>(100));
    ASSERT_TRUE(Reloaded.ok()) << Reloaded.error().str();
    expectAllArtifactsSound(*Reloaded, "e2e reload");
  }
  std::remove(Path.c_str());
}
