//===- tests/verify/RefinementCheckerTest.cpp - Fig. 4 checking tests -----===//

#include "verify/RefinementChecker.h"

#include "expr/Eval.h"
#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

ExprRef nearby200(const Schema &S) {
  auto R = parseQueryExpr(S, "abs(x - 200) + abs(y - 200) <= 100");
  EXPECT_TRUE(R.ok());
  return R.value();
}

} // namespace

TEST(RefinementChecker, AcceptsPaperUnderIndSet) {
  // §2.2's hand-written under_indset for nearby(200,200):
  // True: x in [121,279], y in [179,221]; False: x in [0,400], y in [0,99].
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  IndSets<Box> Sets{Box({{121, 279}, {179, 221}}),
                    Box({{0, 400}, {0, 99}})};
  CertificateBundle B = C.checkIndSets(Sets, ApproxKind::Under);
  EXPECT_TRUE(B.valid()) << B.str();
  EXPECT_EQ(B.Parts.size(), 2u);
  EXPECT_GT(C.solverNodesUsed(), 0u);
}

TEST(RefinementChecker, RejectsUnsoundUnderIndSetWithWitness) {
  Schema S = userLoc();
  ExprRef Q = nearby200(S);
  RefinementChecker C(S, Q);
  // One row too far: x = 280, y = 221 is at distance 80 + 21 = 101.
  IndSets<Box> Sets{Box({{121, 280}, {179, 221}}),
                    Box({{0, 400}, {0, 99}})};
  CertificateBundle B = C.checkIndSets(Sets, ApproxKind::Under);
  ASSERT_FALSE(B.valid());
  const Certificate *Fail = B.firstFailure();
  ASSERT_NE(Fail, nullptr);
  ASSERT_TRUE(Fail->CounterExample.has_value());
  // The witness is a real violation: inside the domain, fails the query.
  EXPECT_TRUE(Sets.TrueSet.contains(*Fail->CounterExample));
  EXPECT_FALSE(evalBool(*Q, *Fail->CounterExample));
}

TEST(RefinementChecker, BottomIsVacuouslyCorrectUnder) {
  // §4.2: "the bottom and top domains are vacuously correct solutions for
  // under- and over-approximations, respectively".
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  IndSets<Box> Sets{Box::bottom(2), Box::bottom(2)};
  EXPECT_TRUE(C.checkIndSets(Sets, ApproxKind::Under).valid());
}

TEST(RefinementChecker, TopIsVacuouslyCorrectOver) {
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  IndSets<Box> Sets{Box::top(S), Box::top(S)};
  EXPECT_TRUE(C.checkIndSets(Sets, ApproxKind::Over).valid());
}

TEST(RefinementChecker, AcceptsExactOverIndSet) {
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  IndSets<Box> Sets{Box({{100, 300}, {100, 300}}), Box::top(S)};
  EXPECT_TRUE(C.checkIndSets(Sets, ApproxKind::Over).valid());
}

TEST(RefinementChecker, RejectsTooSmallOverIndSet) {
  Schema S = userLoc();
  ExprRef Q = nearby200(S);
  RefinementChecker C(S, Q);
  // Misses satisfying points near the left tip of the diamond.
  IndSets<Box> Sets{Box({{150, 300}, {100, 300}}), Box::top(S)};
  CertificateBundle B = C.checkIndSets(Sets, ApproxKind::Over);
  ASSERT_FALSE(B.valid());
  const Certificate *Fail = B.firstFailure();
  ASSERT_TRUE(Fail->CounterExample.has_value());
  EXPECT_TRUE(evalBool(*Q, *Fail->CounterExample));
  EXPECT_FALSE(Sets.TrueSet.contains(*Fail->CounterExample));
}

TEST(RefinementChecker, PowerBoxIndSets) {
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  // A two-box under-approximation of the diamond plus a one-box False set.
  IndSets<PowerBox> Sets{
      PowerBox(2, {Box({{150, 250}, {150, 250}}),
                   Box({{121, 279}, {179, 221}})},
               {}),
      PowerBox(2, {Box({{0, 400}, {0, 99}})}, {})};
  EXPECT_TRUE(C.checkIndSets(Sets, ApproxKind::Under).valid());

  // Adding a box that pokes outside the diamond must be rejected.
  IndSets<PowerBox> Bad = Sets;
  Bad.TrueSet = PowerBox(
      2, {Box({{150, 250}, {150, 250}}), Box({{90, 110}, {190, 210}})}, {});
  EXPECT_FALSE(C.checkIndSets(Bad, ApproxKind::Under).valid());
}

TEST(RefinementChecker, PowerBoxOverWithExcludes) {
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  // Bounding box minus a corner wedge that contains no diamond point.
  PowerBox OverTrue(2, {Box({{100, 300}, {100, 300}})},
                    {Box({{100, 120}, {100, 120}})});
  IndSets<PowerBox> Sets{OverTrue, PowerBox::top(S)};
  EXPECT_TRUE(C.checkIndSets(Sets, ApproxKind::Over).valid());

  // Excluding a region that *does* contain satisfying points is unsound.
  PowerBox BadTrue(2, {Box({{100, 300}, {100, 300}})},
                   {Box({{190, 210}, {190, 210}})});
  IndSets<PowerBox> Bad{BadTrue, PowerBox::top(S)};
  EXPECT_FALSE(C.checkIndSets(Bad, ApproxKind::Over).valid());
}

TEST(RefinementChecker, PosteriorUnderSpec) {
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  Box Prior({{0, 250, }, {0, 250}});
  // postT/postF = ind-set ∩ prior (Fig. 4's underapprox definition).
  Box PostT = Box({{121, 279}, {179, 221}}).intersect(Prior);
  Box PostF = Box({{0, 400}, {0, 99}}).intersect(Prior);
  EXPECT_TRUE(
      C.checkPosterior(Prior, PostT, PostF, ApproxKind::Under).valid());

  // A posterior escaping the prior violates the x ∈ p conjunct.
  CertificateBundle Bad = C.checkPosterior(
      Prior, Box({{121, 279}, {179, 221}}), PostF, ApproxKind::Under);
  EXPECT_FALSE(Bad.valid());
}

TEST(RefinementChecker, PosteriorOverSpec) {
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S));
  Box Prior({{0, 250}, {0, 250}});
  Box PostT = Box({{100, 300}, {100, 300}}).intersect(Prior);
  Box PostF = Prior; // every prior point may answer False here
  EXPECT_TRUE(
      C.checkPosterior(Prior, PostT, PostF, ApproxKind::Over).valid());

  // Clipping the True posterior drops satisfying prior points: unsound.
  CertificateBundle Bad = C.checkPosterior(
      Prior, Box({{150, 300}, {150, 300}}).intersect(Prior), PostF,
      ApproxKind::Over);
  EXPECT_FALSE(Bad.valid());
}

TEST(RefinementChecker, ExhaustionMarksCertificates) {
  Schema S = userLoc();
  RefinementChecker C(S, nearby200(S), /*MaxSolverNodes=*/2);
  IndSets<Box> Sets{Box({{121, 279}, {179, 221}}), Box({{0, 400}, {0, 99}})};
  CertificateBundle B = C.checkIndSets(Sets, ApproxKind::Under);
  EXPECT_FALSE(B.valid());
  ASSERT_NE(B.firstFailure(), nullptr);
  EXPECT_TRUE(B.firstFailure()->Exhausted);
}

TEST(RefinementChecker, CertificateRendering) {
  Certificate C;
  C.Obligation = "forall x. x in dT => query x";
  C.Valid = false;
  C.CounterExample = Point{280, 221};
  std::string Out = C.str();
  EXPECT_NE(Out.find("[FAIL]"), std::string::npos);
  EXPECT_NE(Out.find("(280, 221)"), std::string::npos);
  C.Valid = true;
  C.CounterExample.reset();
  EXPECT_NE(C.str().find("[ok]"), std::string::npos);
}
