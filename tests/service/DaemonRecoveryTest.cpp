//===- tests/service/DaemonRecoveryTest.cpp - Multi-tenant crash salvage --===//
//
// Satellite 3: KB v2 salvage at daemon startup under multi-tenant crash
// simulation. A daemon dies mid-flush (fault injection keeps the old
// file; manual corruption simulates a torn disk); the restarted daemon
// must re-verify every tenant's KB, resynthesize damaged records, and
// keep serving every tenant.
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace anosy;
using namespace anosy::service;

namespace {

struct FaultScope {
  ~FaultScope() { faults::reset(); }
};

/// Three tenants over distinct small modules (distinct thresholds too, so
/// recovery must restore per-tenant policy from the sidecars).
struct TenantSpec {
  const char *Name;
  const char *Source;
  int64_t MinSize;
  const char *Query;
  Point Secret;
};

const TenantSpec Tenants[3] = {
    {"alpha",
     "secret A { x: int[0, 100] }\n"
     "query mid = x >= 40 && x <= 70\n",
     8, "mid", {50}},
    {"beta",
     "secret B { y: int[0, 60], z: int[0, 10] }\n"
     "query corner = y >= 30 && z >= 5\n",
     4, "corner", {45, 7}},
    {"gamma",
     "secret C { w: int[0, 200] }\n"
     "query low = w <= 120\n",
     16, "low", {30}},
};

ServiceRequest makeRegister(const TenantSpec &T) {
  ServiceRequest R;
  R.Kind = RequestKind::Register;
  R.Tenant = T.Name;
  R.ModuleSource = T.Source;
  R.MinSize = T.MinSize;
  return R;
}

ServiceRequest makeDowngrade(const TenantSpec &T) {
  ServiceRequest R;
  R.Kind = RequestKind::Downgrade;
  R.Tenant = T.Name;
  R.Name = T.Query;
  R.Secret = T.Secret;
  return R;
}

/// TempDir() persists across test invocations, so every test scrubs its
/// data directory first — leftover tenant KBs from a previous run would
/// collide with this run's registrations at salvage time.
std::string freshDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

DaemonOptions dirOptions(const std::string &Dir) {
  DaemonOptions Opt;
  Opt.Workers = 0;
  Opt.WatchdogPollMs = 0;
  Opt.DataDir = Dir;
  return Opt;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

void spit(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

/// Flips one digit inside the named record's box list: structurally
/// well-formed, checksum-inconsistent — the shape a torn sector leaves.
std::string flipDigitInRecord(std::string Text, const std::string &Query) {
  size_t Rec = Text.find("query " + Query);
  EXPECT_NE(Rec, std::string::npos);
  size_t Lists = Text.find("true include [", Rec);
  EXPECT_NE(Lists, std::string::npos);
  size_t P = Lists;
  while (P < Text.size() && (Text[P] < '0' || Text[P] > '9'))
    ++P;
  EXPECT_LT(P, Text.size());
  Text[P] = Text[P] == '9' ? '8' : char(Text[P] + 1);
  return Text;
}

/// Registers all three tenants and answers one downgrade each; returns
/// the admitted answers.
std::vector<bool> seedTenants(MonitorDaemon &D) {
  std::vector<bool> Answers;
  for (const TenantSpec &T : Tenants) {
    ServiceResponse Reg = D.call(makeRegister(T));
    EXPECT_EQ(Reg.Status, ResponseStatus::Ok) << T.Name << ": " << Reg.Detail;
    ServiceResponse A = D.call(makeDowngrade(T));
    EXPECT_EQ(A.Status, ResponseStatus::Ok) << T.Name << ": " << A.Detail;
    Answers.push_back(A.BoolValue);
  }
  return Answers;
}

} // namespace

TEST(DaemonRecovery, CrashMidFlushKeepsLastValidKb) {
  // A flush that dies before the atomic rename (service-flush fault,
  // exhausting every retry) leaves the previous valid KB on disk; the
  // "killed" daemon's tenants all come back on restart.
  FaultScope Scope;
  std::string Dir = freshDir("anosyd_crash_flush");
  {
    MonitorDaemon D(dirOptions(Dir));
    ASSERT_TRUE(D.start().ok());
    (void)seedTenants(D); // registration flushed v1 of every KB

    // From here every flush attempt dies before the write — the crash
    // window between serialize and rename, repeated until "power loss".
    FaultConfig C;
    C.Seed = 3;
    C.Sites[static_cast<unsigned>(FaultSite::ServiceFlush)] = {1,
                                                               UINT64_MAX};
    faults::configure(C);
    ServiceRequest F;
    F.Kind = RequestKind::Flush;
    F.Tenant = "alpha";
    ServiceResponse R = D.call(std::move(F));
    EXPECT_EQ(R.Status, ResponseStatus::Error);
    EXPECT_GT(D.stats().FlushFailures, 0u);
    // The daemon dies with the harness still armed: the drain's final
    // flushes fail too, like a kill mid-shutdown.
  }
  faults::reset();

  MonitorDaemon Fresh(dirOptions(Dir));
  auto Rec = Fresh.start();
  ASSERT_TRUE(Rec.ok());
  EXPECT_EQ(Rec->TenantsRecovered, 3u);
  EXPECT_EQ(Rec->TenantsFailed, 0u);
  EXPECT_EQ(Rec->DamagedRecords, 0u);
  for (const TenantSpec &T : Tenants) {
    ServiceResponse A = Fresh.call(makeDowngrade(T));
    EXPECT_EQ(A.Status, ResponseStatus::Ok) << T.Name << ": " << A.Detail;
  }
}

TEST(DaemonRecovery, MultiTenantSalvageResynthesizesDamage) {
  // The full satellite scenario: three tenants on disk; a simulated
  // crash corrupts one record of beta's KB and truncates gamma's file
  // mid-record. Restart must recover every tenant — alpha clean, beta and
  // gamma by resynthesizing their damaged records — and every tenant must
  // answer again with its original policy.
  std::string Dir = freshDir("anosyd_crash_multi");
  std::vector<bool> Before;
  {
    MonitorDaemon D(dirOptions(Dir));
    ASSERT_TRUE(D.start().ok());
    Before = seedTenants(D);
    DrainReport Drain = D.drain();
    ASSERT_EQ(Drain.FlushFailures, 0u);
  }

  // Simulated torn disk: beta gets a checksum-inconsistent record,
  // gamma loses the tail of its file (but keeps the header).
  std::string BetaPath = Dir + "/beta.akb";
  spit(BetaPath, flipDigitInRecord(slurp(BetaPath), "corner"));
  std::string GammaPath = Dir + "/gamma.akb";
  std::string GammaText = slurp(GammaPath);
  size_t Cut = GammaText.find("record-checksum");
  ASSERT_NE(Cut, std::string::npos);
  spit(GammaPath, GammaText.substr(0, Cut));

  MonitorDaemon Fresh(dirOptions(Dir));
  auto Rec = Fresh.start();
  ASSERT_TRUE(Rec.ok());
  EXPECT_EQ(Rec->TenantsRecovered, 3u);
  EXPECT_EQ(Rec->TenantsFailed, 0u);
  EXPECT_GT(Rec->DamagedRecords, 0u);

  // Beta's damaged record was resynthesized — the damage is reported
  // with its machine-readable code, and the query answers again.
  const AnosySession<Box> *Beta = Fresh.tenantSession("beta");
  ASSERT_NE(Beta, nullptr);
  const QueryDegradation *Deg = Beta->degradation().find("corner");
  ASSERT_NE(Deg, nullptr);
  EXPECT_EQ(Deg->Reason, DegradationReason::KnowledgeBaseCorrupt);
  EXPECT_EQ(Deg->code(), ReasonCode::KbCorrupt);
  EXPECT_FALSE(Deg->FellBack); // resynthesized, not ⊥

  // Every tenant answers exactly what it answered before the crash.
  for (size_t I = 0; I != 3; ++I) {
    ServiceResponse A = Fresh.call(makeDowngrade(Tenants[I]));
    ASSERT_EQ(A.Status, ResponseStatus::Ok)
        << Tenants[I].Name << ": " << A.Detail;
    EXPECT_EQ(A.BoolValue, Before[I]) << Tenants[I].Name;
  }

  // The salvage repair-flush already rewrote the damaged KBs: a third
  // life starts fully clean.
  Fresh.drain();
  MonitorDaemon Third(dirOptions(Dir));
  auto Rec3 = Third.start();
  ASSERT_TRUE(Rec3.ok());
  EXPECT_EQ(Rec3->TenantsRecovered, 3u);
  EXPECT_EQ(Rec3->DamagedRecords, 0u);
}

TEST(DaemonRecovery, UnreadableKbIsReportedNotFatal) {
  // A KB that fails whole-file parsing (destroyed header) is a per-tenant
  // failure with a message; the daemon still starts and serves the rest.
  std::string Dir = freshDir("anosyd_crash_unreadable");
  {
    MonitorDaemon D(dirOptions(Dir));
    ASSERT_TRUE(D.start().ok());
    (void)seedTenants(D);
    D.drain();
  }
  spit(Dir + "/alpha.akb", "not a knowledge base at all\n");

  MonitorDaemon Fresh(dirOptions(Dir));
  auto Rec = Fresh.start();
  ASSERT_TRUE(Rec.ok());
  EXPECT_EQ(Rec->TenantsRecovered, 2u);
  EXPECT_EQ(Rec->TenantsFailed, 1u);
  bool SawAlpha = false;
  for (const RecoveredTenant &T : Rec->Tenants)
    if (T.Tenant == "alpha") {
      SawAlpha = true;
      EXPECT_FALSE(T.Ok);
      EXPECT_FALSE(T.Error.empty());
    }
  EXPECT_TRUE(SawAlpha);

  // The surviving tenants serve; the lost one is an explicit error.
  EXPECT_EQ(Fresh.call(makeDowngrade(Tenants[1])).Status,
            ResponseStatus::Ok);
  EXPECT_EQ(Fresh.call(makeDowngrade(Tenants[0])).Status,
            ResponseStatus::Error);
}
