//===- tests/service/DaemonOverloadTest.cpp - ISSUE-7 acceptance gate -----===//
//
// The overload+chaos integration gate: drive the daemon at 2x queue
// capacity with the fault harness armed, and assert the robustness
// contract — no crash, deterministic responses, deadlines honored, a
// graceful drain, and knowledge bases that pass salvage on restart.
//
//===----------------------------------------------------------------------===//

#include "service/LoadHarness.h"

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

using namespace anosy;
using namespace anosy::service;

namespace {

struct FaultScope {
  ~FaultScope() { faults::reset(); }
};

/// The chaos configuration: every service site armed, plus solver and KB
/// faults, all deterministic in the seed.
FaultConfig chaosConfig(uint64_t Seed) {
  FaultConfig C;
  C.Seed = Seed;
  C.Sites[static_cast<unsigned>(FaultSite::ServiceAccept)] = {8, UINT64_MAX};
  C.Sites[static_cast<unsigned>(FaultSite::ServiceAdmit)] = {4, UINT64_MAX};
  C.Sites[static_cast<unsigned>(FaultSite::ServiceEnqueue)] = {8,
                                                               UINT64_MAX};
  C.Sites[static_cast<unsigned>(FaultSite::ServiceFlush)] = {4, UINT64_MAX};
  C.Sites[static_cast<unsigned>(FaultSite::SolverCharge)] = {64, UINT64_MAX};
  C.Sites[static_cast<unsigned>(FaultSite::KbWrite)] = {8, UINT64_MAX};
  return C;
}

} // namespace

TEST(DaemonOverload, TwiceCapacityBurstShedsExactlyTheExcess) {
  // Pump mode, quiet queue: a paused burst of 2C requests against a
  // capacity-C queue accepts exactly C and sheds exactly C, regardless
  // of timing.
  DaemonOptions Opt;
  Opt.Workers = 0;
  Opt.WatchdogPollMs = 0;
  Opt.QueueCapacity = 8;
  MonitorDaemon Daemon(Opt);
  ASSERT_TRUE(Daemon.start().ok());

  LoadOptions LOpt;
  LOpt.Tenants = 2;
  LOpt.Sessions = 4;
  LOpt.StepsPerSession = 16;
  LOpt.Seed = 11;
  LOpt.BurstFactor = 2;
  LoadReport Rep = runLoad(Daemon, LOpt);

  EXPECT_EQ(Rep.Mismatches, 0u) << (Rep.MismatchNotes.empty()
                                        ? ""
                                        : Rep.MismatchNotes[0]);
  EXPECT_EQ(Rep.TenantsFailed, 0u);
  // Every burst of 16 sheds exactly 8: total sheds are half the steps.
  EXPECT_EQ(Rep.Steps, 64u);
  EXPECT_EQ(Rep.Shed, 32u);
  EXPECT_EQ(Rep.Admitted + Rep.Refused + Rep.Bottom, 32u);
  EXPECT_EQ(Daemon.stats().Shed, 32u);
}

TEST(DaemonOverload, DeterministicAcrossRuns) {
  // The same configuration twice produces byte-identical outcome counts:
  // deterministic load shedding is part of the contract.
  auto Run = [](uint64_t Seed) {
    DaemonOptions Opt;
    Opt.Workers = 0;
    Opt.WatchdogPollMs = 0;
    Opt.QueueCapacity = 8;
    MonitorDaemon Daemon(Opt);
    EXPECT_TRUE(Daemon.start().ok());
    LoadOptions LOpt;
    LOpt.Tenants = 3;
    LOpt.Sessions = 6;
    LOpt.StepsPerSession = 8;
    LOpt.Seed = Seed;
    LOpt.BurstFactor = 2;
    return runLoad(Daemon, LOpt);
  };
  LoadReport A = Run(5);
  LoadReport B = Run(5);
  EXPECT_EQ(A.Mismatches, 0u);
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Admitted, B.Admitted);
  EXPECT_EQ(A.Refused, B.Refused);
  EXPECT_EQ(A.Bottom, B.Bottom);
  EXPECT_EQ(A.Shed, B.Shed);
}

TEST(DaemonOverload, ChaosGateNeverViolatesTheContract) {
  // The full gate: worker threads, 2x-capacity bursts, every fault site
  // armed, persistence on. Rotating seeds so one lucky schedule cannot
  // hide a violation. Afterwards: graceful drain, then a clean restart
  // whose salvage must accept every tenant KB the drain flushed.
  FaultScope Scope;
  // TempDir() persists across invocations: scrub the per-seed data dirs
  // so a previous run's tenants don't collide with this run's.
  std::string Dir = testing::TempDir() + "anosyd_chaos_gate";
  for (uint64_t Seed : {1u, 7u, 23u})
    std::filesystem::remove_all(Dir + std::to_string(Seed));

  for (uint64_t Seed : {1u, 7u, 23u}) {
    faults::configure(chaosConfig(Seed));
    DaemonOptions Opt;
    Opt.Workers = 2;
    Opt.QueueCapacity = 8;
    Opt.DataDir = Dir + std::to_string(Seed);
    MonitorDaemon Daemon(Opt);
    ASSERT_TRUE(Daemon.start().ok());

    LoadOptions LOpt;
    LOpt.Tenants = 3;
    LOpt.Sessions = 6;
    LOpt.StepsPerSession = 8;
    LOpt.Seed = Seed;
    LOpt.BurstFactor = 2;
    LoadReport Rep = runLoad(Daemon, LOpt);

    // The contract: every response deterministic and sound — zero oracle
    // mismatches, zero uncoded bottoms — and overload produced real,
    // explicit shedding.
    EXPECT_EQ(Rep.Mismatches, 0u)
        << "seed " << Seed << ": "
        << (Rep.MismatchNotes.empty() ? "" : Rep.MismatchNotes[0]);
    EXPECT_EQ(Rep.TenantsFailed, 0u) << "seed " << Seed;
    EXPECT_GT(Rep.Shed, 0u) << "seed " << Seed;

    // Graceful drain: the queue runs dry and every tenant flushes (the
    // flush retries ride out the injected faults often enough that a
    // same-seed retry budget of 3 always lands at these rates).
    DrainReport Drain = Daemon.drain();
    EXPECT_EQ(Daemon.queueDepth(), 0u);

    // Restart with the harness disarmed: whatever the drain put on disk
    // must pass salvage — crash recovery is only as good as the files
    // the previous life left behind.
    faults::reset();
    DaemonOptions Opt2 = Opt;
    Opt2.Workers = 0;
    Opt2.WatchdogPollMs = 0;
    MonitorDaemon Fresh(Opt2);
    auto Rec = Fresh.start();
    ASSERT_TRUE(Rec.ok()) << "seed " << Seed;
    EXPECT_EQ(Rec->TenantsFailed, 0u) << "seed " << Seed;
    // Every tenant whose drain flush landed is on disk; tenants whose
    // final flush failed may still be present from an earlier flush, so
    // the salvage count is bounded below, not pinned.
    EXPECT_GE(Rec->TenantsRecovered, 3u - Drain.FlushFailures)
        << "seed " << Seed;
  }
}

TEST(DaemonOverload, DeadlinesHonoredUnderBacklog) {
  // Requests that outlive their deadline in the queue answer ⊥/deadline
  // without executing; fresh requests still serve.
  DaemonOptions Opt;
  Opt.Workers = 0;
  Opt.WatchdogPollMs = 0;
  Opt.QueueCapacity = 32;
  MonitorDaemon Daemon(Opt);
  ASSERT_TRUE(Daemon.start().ok());

  ServiceRequest Reg;
  Reg.Kind = RequestKind::Register;
  Reg.Tenant = "t";
  Reg.ModuleSource = "secret S { x: int[0, 60] }\nquery high = x >= 30\n";
  ASSERT_EQ(Daemon.call(std::move(Reg)).Status, ResponseStatus::Ok);

  std::vector<std::future<ServiceResponse>> Futs;
  for (int I = 0; I != 8; ++I) {
    ServiceRequest R;
    R.Kind = RequestKind::Downgrade;
    R.Tenant = "t";
    R.Name = "high";
    R.Secret = {45};
    R.DeadlineMs = 1;
    Futs.push_back(Daemon.submit(std::move(R)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Daemon.pump();
  for (auto &F : Futs) {
    ServiceResponse R = F.get();
    EXPECT_EQ(R.Status, ResponseStatus::Bottom);
    EXPECT_EQ(R.Reason, ReasonCode::Deadline);
  }
  EXPECT_EQ(Daemon.stats().DeadlineExpired, 8u);

  ServiceRequest Fresh;
  Fresh.Kind = RequestKind::Downgrade;
  Fresh.Tenant = "t";
  Fresh.Name = "high";
  Fresh.Secret = {45};
  ServiceResponse R = Daemon.call(std::move(Fresh));
  EXPECT_EQ(R.Status, ResponseStatus::Ok);
}
