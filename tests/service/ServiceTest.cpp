//===- tests/service/ServiceTest.cpp - anosyd unit tests ------------------===//
//
// Deterministic (manual-pump mode, no threads) tests of the daemon's
// vocabulary, front door, bounded-queue shedding, deadlines, quotas,
// machine-readable reason codes, and flush/restart persistence.
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include "core/Degradation.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

using namespace anosy;
using namespace anosy::service;

namespace {

struct FaultScope {
  ~FaultScope() { faults::reset(); }
};

/// TempDir() persists across test invocations, so tests that use a data
/// directory scrub it first — leftover tenant KBs from a previous run
/// would collide with this run's registrations at salvage time.
std::string freshDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

const char *TinyModule = R"(
secret S { x: int[0, 60] }
query high = x >= 30
classify band = if x < 20 then 0 else if x < 40 then 1 else 2
)";

/// A daemon in manual-pump mode: no worker or watchdog threads, so every
/// test observation is deterministic.
DaemonOptions pumpOptions(size_t QueueCapacity = 16) {
  DaemonOptions Opt;
  Opt.Workers = 0;
  Opt.WatchdogPollMs = 0;
  Opt.QueueCapacity = QueueCapacity;
  return Opt;
}

ServiceRequest registerRequest(const std::string &Tenant,
                               const char *Source = TinyModule,
                               int64_t MinSize = -1) {
  ServiceRequest R;
  R.Kind = RequestKind::Register;
  R.Tenant = Tenant;
  R.ModuleSource = Source;
  R.MinSize = MinSize;
  return R;
}

ServiceRequest downgradeRequest(const std::string &Tenant,
                                const std::string &Name, Point Secret) {
  ServiceRequest R;
  R.Kind = RequestKind::Downgrade;
  R.Tenant = Tenant;
  R.Name = Name;
  R.Secret = std::move(Secret);
  return R;
}

} // namespace

// === Vocabulary =========================================================

TEST(ServiceVocabulary, Names) {
  EXPECT_STREQ(requestKindName(RequestKind::Register), "register");
  EXPECT_STREQ(requestKindName(RequestKind::Downgrade), "downgrade");
  EXPECT_STREQ(requestKindName(RequestKind::Classify), "classify");
  EXPECT_STREQ(requestKindName(RequestKind::Flush), "flush");
  EXPECT_STREQ(responseStatusName(ResponseStatus::Ok), "ok");
  EXPECT_STREQ(responseStatusName(ResponseStatus::Refused), "refused");
  EXPECT_STREQ(responseStatusName(ResponseStatus::Bottom), "bottom");
  EXPECT_STREQ(responseStatusName(ResponseStatus::Overloaded), "overloaded");
  EXPECT_STREQ(responseStatusName(ResponseStatus::Error), "error");
}

TEST(ServiceVocabulary, ReasonCodeNames) {
  EXPECT_STREQ(reasonCodeName(ReasonCode::None), "none");
  EXPECT_STREQ(reasonCodeName(ReasonCode::Deadline), "deadline");
  EXPECT_STREQ(reasonCodeName(ReasonCode::Budget), "budget");
  EXPECT_STREQ(reasonCodeName(ReasonCode::Shed), "shed");
  EXPECT_STREQ(reasonCodeName(ReasonCode::StaticallyRejected),
               "statically-rejected");
  EXPECT_STREQ(reasonCodeName(ReasonCode::Undecided), "undecided");
  EXPECT_STREQ(reasonCodeName(ReasonCode::KbCorrupt), "kb-corrupt");
  EXPECT_STREQ(reasonCodeName(ReasonCode::ArtifactInvalid),
               "artifact-invalid");
}

// The satellite-6 regression: every ⊥ fallback must map to the right
// machine-readable code, and the deadline/budget split is carried by
// DeadlineExpired, not guessed from prose.
TEST(ServiceVocabulary, DegradationReasonCodeMapping) {
  QueryDegradation D{"q", DegradationReason::SynthesisExhausted, 3, true,
                     ""};
  EXPECT_EQ(D.code(), ReasonCode::Budget);
  D.DeadlineExpired = true;
  EXPECT_EQ(D.code(), ReasonCode::Deadline);

  D.Reason = DegradationReason::VerificationUndecided;
  EXPECT_EQ(D.code(), ReasonCode::Deadline);
  D.DeadlineExpired = false;
  EXPECT_EQ(D.code(), ReasonCode::Undecided);

  D.Reason = DegradationReason::KnowledgeBaseCorrupt;
  EXPECT_EQ(D.code(), ReasonCode::KbCorrupt);
  D.Reason = DegradationReason::LoadedArtifactInvalid;
  EXPECT_EQ(D.code(), ReasonCode::ArtifactInvalid);
  D.Reason = DegradationReason::StaticallyRejected;
  EXPECT_EQ(D.code(), ReasonCode::StaticallyRejected);

  // The human-readable rendering carries the code too.
  EXPECT_NE(D.str().find("[code=statically-rejected]"), std::string::npos);
}

TEST(ServiceVocabulary, RenderJsonShapes) {
  ServiceResponse R;
  R.Id = 7;
  R.Status = ResponseStatus::Ok;
  R.HasBool = true;
  R.BoolValue = true;
  EXPECT_EQ(R.renderJson(), "{\"id\":7,\"status\":\"ok\",\"value\":true}");

  ServiceResponse B;
  B.Id = 8;
  B.Status = ResponseStatus::Bottom;
  B.Reason = ReasonCode::Deadline;
  EXPECT_EQ(B.renderJson(),
            "{\"id\":8,\"status\":\"bottom\",\"reason\":\"deadline\"}");

  ServiceResponse S;
  S.Id = 9;
  S.Status = ResponseStatus::Overloaded;
  S.Reason = ReasonCode::Shed;
  S.Detail = "queue \"full\"";
  EXPECT_EQ(S.renderJson(), "{\"id\":9,\"status\":\"overloaded\",\"reason\":"
                            "\"shed\",\"detail\":\"queue \\\"full\\\"\"}");

  ServiceResponse Reg;
  Reg.Id = 10;
  Reg.Status = ResponseStatus::Ok;
  Reg.Queries = 2;
  Reg.Classifiers = 1;
  Reg.Degraded.push_back({"q1", ReasonCode::Budget, true});
  EXPECT_EQ(Reg.renderJson(),
            "{\"id\":10,\"status\":\"ok\",\"queries\":2,\"classifiers\":1,"
            "\"degraded\":[{\"query\":\"q1\",\"code\":\"budget\","
            "\"bottom\":true}]}");
}

// === Front door and execution ===========================================

TEST(MonitorDaemon, RegisterDowngradeClassify) {
  MonitorDaemon D(pumpOptions());
  ASSERT_TRUE(D.start().ok());

  ServiceResponse Reg = D.call(registerRequest("acme"));
  ASSERT_EQ(Reg.Status, ResponseStatus::Ok) << Reg.Detail;
  EXPECT_EQ(Reg.Queries, 1u);
  EXPECT_EQ(Reg.Classifiers, 1u);
  EXPECT_TRUE(Reg.Degraded.empty()) << Reg.renderJson();

  ServiceResponse Hi = D.call(downgradeRequest("acme", "high", {45}));
  ASSERT_EQ(Hi.Status, ResponseStatus::Ok) << Hi.Detail;
  ASSERT_TRUE(Hi.HasBool);
  EXPECT_TRUE(Hi.BoolValue);

  ServiceResponse Lo = D.call(downgradeRequest("acme", "high", {3}));
  ASSERT_EQ(Lo.Status, ResponseStatus::Ok) << Lo.Detail;
  ASSERT_TRUE(Lo.HasBool);
  EXPECT_FALSE(Lo.BoolValue);

  ServiceRequest C;
  C.Kind = RequestKind::Classify;
  C.Tenant = "acme";
  C.Name = "band";
  C.Secret = {25};
  ServiceResponse Band = D.call(std::move(C));
  ASSERT_EQ(Band.Status, ResponseStatus::Ok) << Band.Detail;
  ASSERT_TRUE(Band.HasInt);
  EXPECT_EQ(Band.IntValue, 1);

  DaemonStats St = D.stats();
  EXPECT_EQ(St.Ok, 4u);
  EXPECT_EQ(St.Shed, 0u);
  EXPECT_EQ(St.Errors, 0u);
}

TEST(MonitorDaemon, FrontDoorRejections) {
  MonitorDaemon D(pumpOptions());
  ASSERT_TRUE(D.start().ok());

  // Unknown tenants never reach the queue.
  ServiceResponse Unknown = D.call(downgradeRequest("ghost", "high", {1}));
  EXPECT_EQ(Unknown.Status, ResponseStatus::Error);
  EXPECT_NE(Unknown.Detail.find("unknown tenant"), std::string::npos);

  // Unparseable modules are refused at the door, not at execution.
  ServiceResponse Bad = D.call(registerRequest("bad", "query = = ="));
  EXPECT_EQ(Bad.Status, ResponseStatus::Error);
  EXPECT_NE(Bad.Detail.find("front door"), std::string::npos);

  // Duplicate tenants are refused.
  ASSERT_EQ(D.call(registerRequest("acme")).Status, ResponseStatus::Ok);
  ServiceResponse Dup = D.call(registerRequest("acme"));
  EXPECT_EQ(Dup.Status, ResponseStatus::Error);
  EXPECT_NE(Dup.Detail.find("already registered"), std::string::npos);

  // Unknown query names are sound refusals (the hostile-trace path).
  ServiceResponse NoQ = D.call(downgradeRequest("acme", "nope", {1}));
  EXPECT_EQ(NoQ.Status, ResponseStatus::Refused);
}

TEST(MonitorDaemon, QueueFullShedsDeterministically) {
  MonitorDaemon D(pumpOptions(/*QueueCapacity=*/4));
  ASSERT_TRUE(D.start().ok());
  ASSERT_EQ(D.call(registerRequest("acme")).Status, ResponseStatus::Ok);

  // Ten submissions against a capacity-4 queue with no pump in between:
  // exactly 4 enqueue, exactly 6 shed, and the shed futures are resolved
  // immediately (never a hang).
  std::vector<std::future<ServiceResponse>> Futs;
  for (int I = 0; I != 10; ++I)
    Futs.push_back(D.submit(downgradeRequest("acme", "high", {45})));
  EXPECT_EQ(D.queueDepth(), 4u);

  unsigned Shed = 0;
  for (auto &F : Futs)
    if (F.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      ServiceResponse R = F.get();
      EXPECT_EQ(R.Status, ResponseStatus::Overloaded);
      EXPECT_EQ(R.Reason, ReasonCode::Shed);
      ++Shed;
    }
  EXPECT_EQ(Shed, 6u);
  EXPECT_EQ(D.stats().Shed, 6u);

  // The pump resolves the backlog; every queued request answers Ok.
  EXPECT_EQ(D.pump(), 4u);
  EXPECT_EQ(D.queueDepth(), 0u);
  EXPECT_EQ(D.stats().Ok, 5u); // register + 4 queued downgrades
}

TEST(MonitorDaemon, TenantInFlightQuotaSheds) {
  DaemonOptions Opt = pumpOptions();
  Opt.Quotas.MaxInFlight = 2;
  MonitorDaemon D(Opt);
  ASSERT_TRUE(D.start().ok());
  ASSERT_EQ(D.call(registerRequest("acme")).Status, ResponseStatus::Ok);

  auto F1 = D.submit(downgradeRequest("acme", "high", {45}));
  auto F2 = D.submit(downgradeRequest("acme", "high", {45}));
  auto F3 = D.submit(downgradeRequest("acme", "high", {45}));
  ServiceResponse R3 = F3.get();
  EXPECT_EQ(R3.Status, ResponseStatus::Overloaded);
  EXPECT_NE(R3.Detail.find("quota"), std::string::npos);
  D.pump();
  EXPECT_EQ(F1.get().Status, ResponseStatus::Ok);
  EXPECT_EQ(F2.get().Status, ResponseStatus::Ok);

  // In-flight is released after execution: the tenant serves again.
  EXPECT_EQ(D.call(downgradeRequest("acme", "high", {45})).Status,
            ResponseStatus::Ok);
}

TEST(MonitorDaemon, KnowledgeBaseQuotaRejectsRegistration) {
  DaemonOptions Opt = pumpOptions();
  Opt.Quotas.MaxKbBytes = 16; // no real KB fits
  MonitorDaemon D(Opt);
  ASSERT_TRUE(D.start().ok());
  ServiceResponse R = D.call(registerRequest("acme"));
  EXPECT_EQ(R.Status, ResponseStatus::Error);
  EXPECT_NE(R.Detail.find("quota exceeded"), std::string::npos);
  EXPECT_TRUE(D.tenantNames().empty());
}

TEST(MonitorDaemon, DeadlineExpiredInQueueAnswersBottom) {
  MonitorDaemon D(pumpOptions());
  ASSERT_TRUE(D.start().ok());
  ASSERT_EQ(D.call(registerRequest("acme")).Status, ResponseStatus::Ok);

  ServiceRequest R = downgradeRequest("acme", "high", {45});
  R.DeadlineMs = 1;
  auto F = D.submit(std::move(R));
  // Let the deadline lapse while the request sits in the queue; the pump
  // must answer ⊥/deadline without executing it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  D.pump();
  ServiceResponse Resp = F.get();
  EXPECT_EQ(Resp.Status, ResponseStatus::Bottom);
  EXPECT_EQ(Resp.Reason, ReasonCode::Deadline);
  EXPECT_FALSE(Resp.HasBool);
  EXPECT_EQ(D.stats().DeadlineExpired, 1u);
}

// === Reason codes on degraded artifacts (satellite 6) ===================

TEST(MonitorDaemon, StaticallyRejectedCarriesReasonCode) {
  // Both posteriors of `high` over a 10-point domain sit far below the
  // min-size-100 policy, so lint admission rejects it before synthesis;
  // the registration reports the ⊥ artifact with its code, and the
  // downgrade answers Bottom with the same code.
  const char *Narrow = R"(
secret S { x: int[0, 9] }
query high = x >= 5
)";
  MonitorDaemon D(pumpOptions());
  ASSERT_TRUE(D.start().ok());
  ServiceResponse Reg = D.call(registerRequest("acme", Narrow, 100));
  ASSERT_EQ(Reg.Status, ResponseStatus::Ok) << Reg.Detail;
  ASSERT_EQ(Reg.Degraded.size(), 1u);
  EXPECT_EQ(Reg.Degraded[0].Name, "high");
  EXPECT_EQ(Reg.Degraded[0].Code, ReasonCode::StaticallyRejected);
  EXPECT_TRUE(Reg.Degraded[0].FellBack);
  EXPECT_NE(Reg.renderJson().find("\"code\":\"statically-rejected\""),
            std::string::npos);

  ServiceResponse R = D.call(downgradeRequest("acme", "high", {7}));
  EXPECT_EQ(R.Status, ResponseStatus::Bottom);
  EXPECT_EQ(R.Reason, ReasonCode::StaticallyRejected);
  EXPECT_NE(R.renderJson().find("\"reason\":\"statically-rejected\""),
            std::string::npos);
}

TEST(MonitorDaemon, BudgetExhaustionCarriesBudgetCode) {
  // A 1-node session budget exhausts synthesis instantly; without a
  // wall-clock deadline the ⊥ must be coded "budget", not "deadline".
  DaemonOptions Opt = pumpOptions();
  Opt.Quotas.MaxSessionNodes = 1;
  MonitorDaemon D(Opt);
  ASSERT_TRUE(D.start().ok());
  ServiceResponse Reg = D.call(registerRequest("acme"));
  ASSERT_EQ(Reg.Status, ResponseStatus::Ok) << Reg.Detail;
  ASSERT_FALSE(Reg.Degraded.empty());
  bool SawBudget = false;
  for (const DegradedQueryJson &Q : Reg.Degraded) {
    EXPECT_NE(Q.Code, ReasonCode::Deadline) << Q.Name;
    if (Q.Code == ReasonCode::Budget)
      SawBudget = true;
  }
  EXPECT_TRUE(SawBudget) << Reg.renderJson();
}

// === Persistence across restart =========================================

TEST(MonitorDaemon, FlushAndRestartSalvage) {
  std::string Dir = freshDir("anosyd_restart_test");
  DaemonOptions Opt = pumpOptions();
  Opt.DataDir = Dir;

  ServiceResponse FirstAnswer;
  {
    MonitorDaemon D(Opt);
    ASSERT_TRUE(D.start().ok());
    ASSERT_EQ(D.call(registerRequest("acme", TinyModule, 8)).Status,
              ResponseStatus::Ok);
    FirstAnswer = D.call(downgradeRequest("acme", "high", {45}));
    ASSERT_EQ(FirstAnswer.Status, ResponseStatus::Ok);
    DrainReport Drain = D.drain();
    EXPECT_EQ(Drain.TenantsFlushed, 1u);
    EXPECT_EQ(Drain.FlushFailures, 0u);
  }

  // A fresh daemon over the same data directory recovers the tenant —
  // same policy (from the sidecar), same answers, no resynthesis needed.
  MonitorDaemon D2(Opt);
  auto Rec = D2.start();
  ASSERT_TRUE(Rec.ok());
  ASSERT_EQ(Rec->TenantsRecovered, 1u);
  EXPECT_EQ(Rec->TenantsFailed, 0u);
  EXPECT_EQ(Rec->DamagedRecords, 0u);
  ASSERT_EQ(Rec->Tenants.size(), 1u);
  EXPECT_EQ(Rec->Tenants[0].Tenant, "acme");

  ServiceResponse Again = D2.call(downgradeRequest("acme", "high", {45}));
  ASSERT_EQ(Again.Status, ResponseStatus::Ok) << Again.Detail;
  EXPECT_EQ(Again.BoolValue, FirstAnswer.BoolValue);
}

TEST(MonitorDaemon, DrainIsIdempotentAndStopsIntake) {
  MonitorDaemon D(pumpOptions());
  ASSERT_TRUE(D.start().ok());
  ASSERT_EQ(D.call(registerRequest("acme")).Status, ResponseStatus::Ok);
  DrainReport First = D.drain();
  DrainReport Second = D.drain();
  EXPECT_EQ(First.Drained, Second.Drained);

  // Post-drain submissions are refused as Overloaded/shed, not hung.
  ServiceResponse R = D.call(downgradeRequest("acme", "high", {45}));
  EXPECT_EQ(R.Status, ResponseStatus::Overloaded);
  EXPECT_EQ(R.Reason, ReasonCode::Shed);
  EXPECT_NE(R.Detail.find("draining"), std::string::npos);
}

TEST(MonitorDaemon, OutOfSchemaSecretIsRefusedNotFatal) {
  // A secret outside the tenant's schema (or with the wrong arity) is a
  // malformed request; the tracker layer asserts on such points, so the
  // daemon must refuse them at the front line instead of crashing.
  MonitorDaemon Daemon(pumpOptions());
  ASSERT_TRUE(Daemon.start().ok());
  ASSERT_EQ(Daemon.call(registerRequest("acme")).Status, ResponseStatus::Ok);

  ServiceResponse R = Daemon.call(downgradeRequest("acme", "high", {400}));
  EXPECT_EQ(R.Status, ResponseStatus::Refused);
  EXPECT_NE(R.Detail.find("schema"), std::string::npos) << R.Detail;

  R = Daemon.call(downgradeRequest("acme", "high", {1, 2}));
  EXPECT_EQ(R.Status, ResponseStatus::Refused);

  // The daemon is unharmed: a well-formed request still answers.
  R = Daemon.call(downgradeRequest("acme", "high", {45}));
  EXPECT_EQ(R.Status, ResponseStatus::Ok);
  EXPECT_TRUE(R.BoolValue);
}
