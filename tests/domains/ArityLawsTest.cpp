//===- tests/domains/ArityLawsTest.cpp - Laws at other arities ------------===//
//
// DomainLawsTest sweeps the Fig. 3 laws in 2D; secrets in the benchmark
// suite have up to 4 fields and the degenerate 1-field case also matters
// (B-style birthday widgets). This sweep repeats the core laws at arity
// 1 and 3 with exhaustive membership counting kept tractable.
//
//===----------------------------------------------------------------------===//

#include "domains/AbstractDomain.h"

#include "baselines/Exhaustive.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema schemaOfArity(size_t N, int64_t Hi) {
  std::vector<Field> Fields;
  for (size_t I = 0; I != N; ++I)
    Fields.push_back({"f" + std::to_string(I), 0, Hi});
  return Schema("S", std::move(Fields));
}

Box randomBox(Rng &R, size_t N, int64_t Hi) {
  if (R.range(0, 5) == 0)
    return Box::bottom(N);
  std::vector<Interval> Dims;
  for (size_t I = 0; I != N; ++I) {
    int64_t Lo = R.range(0, Hi);
    Dims.push_back({Lo, R.range(Lo, Hi)});
  }
  return Box(std::move(Dims));
}

template <AbstractDomain D>
void sweep(const Schema &S, int64_t Hi, uint64_t Seed) {
  Rng R(Seed);
  size_t N = S.arity();
  for (int Trial = 0; Trial != 25; ++Trial) {
    D D1, D2;
    if constexpr (std::is_same_v<D, Box>) {
      D1 = randomBox(R, N, Hi);
      D2 = randomBox(R, N, Hi);
    } else {
      std::vector<Box> I1{randomBox(R, N, Hi), randomBox(R, N, Hi)};
      std::vector<Box> I2{randomBox(R, N, Hi)};
      std::vector<Box> E1{randomBox(R, N, Hi)};
      D1 = PowerBox(N, I1, E1);
      D2 = PowerBox(N, I2, {});
    }
    EXPECT_TRUE(checkSizeLaw(D1, D2));
    EXPECT_TRUE(checkIntersectLaw(D1, D2));
    // size == exhaustive membership count.
    int64_t Brute = 0;
    forEachPoint(Box::top(S), [&](const Point &P) {
      if (DomainTraits<D>::member(D1, P))
        ++Brute;
      return true;
    });
    EXPECT_EQ(DomainTraits<D>::size(D1).toInt64(), Brute)
        << DomainTraits<D>::str(D1);
    // Intersection membership is pointwise conjunction.
    D I12 = DomainTraits<D>::intersect(D1, D2);
    for (int K = 0; K != 8; ++K) {
      Point P;
      for (size_t F = 0; F != N; ++F)
        P.push_back(R.range(0, Hi));
      EXPECT_EQ(DomainTraits<D>::member(I12, P),
                DomainTraits<D>::member(D1, P) &&
                    DomainTraits<D>::member(D2, P));
      EXPECT_TRUE(checkSubsetLaw(P, D1, D2));
    }
  }
}

} // namespace

TEST(ArityLaws, OneDimensionalBox) {
  sweep<Box>(schemaOfArity(1, 300), 300, 5);
}

TEST(ArityLaws, OneDimensionalPowerBox) {
  sweep<PowerBox>(schemaOfArity(1, 300), 300, 6);
}

TEST(ArityLaws, ThreeDimensionalBox) {
  sweep<Box>(schemaOfArity(3, 12), 12, 7);
}

TEST(ArityLaws, ThreeDimensionalPowerBox) {
  sweep<PowerBox>(schemaOfArity(3, 12), 12, 8);
}

TEST(ArityLaws, FourDimensionalVolumesOnly) {
  // 4D with exhaustive counting kept small.
  Schema S = schemaOfArity(4, 5);
  Rng R(9);
  for (int Trial = 0; Trial != 10; ++Trial) {
    PowerBox P(4, {randomBox(R, 4, 5), randomBox(R, 4, 5)},
               {randomBox(R, 4, 5)});
    int64_t Brute = 0;
    forEachPoint(Box::top(S), [&](const Point &Pt) {
      if (P.member(Pt))
        ++Brute;
      return true;
    });
    EXPECT_EQ(P.size().toInt64(), Brute) << P.str();
  }
}
