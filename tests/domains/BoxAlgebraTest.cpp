//===- tests/domains/BoxAlgebraTest.cpp - Region algebra tests ------------===//

#include "domains/BoxAlgebra.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Box box(int64_t XL, int64_t XH, int64_t YL, int64_t YH) {
  return Box({{XL, XH}, {YL, YH}});
}

/// Brute-force |∪A \ ∪B| over a small grid.
int64_t bruteDifference(const std::vector<Box> &A, const std::vector<Box> &B,
                        int64_t Lo, int64_t Hi) {
  int64_t Count = 0;
  for (int64_t X = Lo; X <= Hi; ++X)
    for (int64_t Y = Lo; Y <= Hi; ++Y) {
      Point P{X, Y};
      bool InA = false, InB = false;
      for (const Box &Bx : A)
        InA = InA || Bx.contains(P);
      for (const Box &Bx : B)
        InB = InB || Bx.contains(P);
      if (InA && !InB)
        ++Count;
    }
  return Count;
}

} // namespace

TEST(BoxAlgebra, UnionOfDisjointBoxesAdds) {
  std::vector<Box> Bs{box(0, 1, 0, 1), box(5, 6, 5, 6)};
  EXPECT_EQ(unionVolume(Bs, 2).toInt64(), 8);
}

TEST(BoxAlgebra, UnionCountsOverlapOnce) {
  std::vector<Box> Bs{box(0, 3, 0, 3), box(2, 5, 2, 5)};
  // 16 + 16 - 4 = 28.
  EXPECT_EQ(unionVolume(Bs, 2).toInt64(), 28);
}

TEST(BoxAlgebra, UnionIgnoresEmptyBoxes) {
  std::vector<Box> Bs{box(0, 1, 0, 1), Box::bottom(2)};
  EXPECT_EQ(unionVolume(Bs, 2).toInt64(), 4);
  EXPECT_TRUE(unionVolume({}, 2).isZero());
}

TEST(BoxAlgebra, DifferenceCarvesHole) {
  std::vector<Box> A{box(0, 9, 0, 9)};
  std::vector<Box> B{box(3, 6, 3, 6)};
  EXPECT_EQ(differenceVolume(A, B, 2).toInt64(), 100 - 16);
}

TEST(BoxAlgebra, DifferenceWithNoOverlapIsUnion) {
  std::vector<Box> A{box(0, 1, 0, 1)};
  std::vector<Box> B{box(10, 11, 10, 11)};
  EXPECT_EQ(differenceVolume(A, B, 2).toInt64(), 4);
}

TEST(BoxAlgebra, DifferenceFullyCoveredIsZero) {
  std::vector<Box> A{box(3, 4, 3, 4)};
  std::vector<Box> B{box(0, 9, 0, 9)};
  EXPECT_TRUE(differenceVolume(A, B, 2).isZero());
}

TEST(BoxAlgebra, UnionCovers) {
  std::vector<Box> Cover{box(0, 5, 0, 9), box(6, 9, 0, 9)};
  EXPECT_TRUE(unionCovers(Cover, box(0, 9, 0, 9)));  // jointly, not singly
  EXPECT_FALSE(unionCovers({box(0, 5, 0, 9)}, box(0, 9, 0, 9)));
  EXPECT_TRUE(unionCovers({}, Box::bottom(2)));
  EXPECT_FALSE(unionCovers({}, box(0, 0, 0, 0)));
}

TEST(BoxAlgebra, PruneSubsumedDropsContainedAndEmpty) {
  std::vector<Box> Bs{box(0, 9, 0, 9), box(2, 3, 2, 3), Box::bottom(2),
                      box(20, 30, 20, 30)};
  std::vector<Box> Kept = pruneSubsumed(Bs);
  ASSERT_EQ(Kept.size(), 2u);
  EXPECT_EQ(unionVolume(Kept, 2), unionVolume(Bs, 2));
}

TEST(BoxAlgebra, PruneSubsumedKeepsOneDuplicate) {
  std::vector<Box> Bs{box(0, 4, 0, 4), box(0, 4, 0, 4)};
  EXPECT_EQ(pruneSubsumed(Bs).size(), 1u);
}

TEST(BoxAlgebra, HighDimensionalVolume) {
  Box B4({{0, 9}, {0, 9}, {0, 9}, {0, 9}});
  Box Inner({{2, 7}, {2, 7}, {2, 7}, {2, 7}});
  EXPECT_EQ(differenceVolume({B4}, {Inner}, 4).toInt64(),
            10000 - 6 * 6 * 6 * 6);
}

TEST(BoxAlgebra, HugeCoordinatesNoOverflow) {
  // Widths near 1e8 per dimension; the product exceeds int64 in 3D.
  Box Big({{0, 99999999}, {0, 99999999}, {0, 99999999}});
  BigCount V = unionVolume({Big}, 3);
  EXPECT_FALSE(V.isSaturated());
  EXPECT_EQ(V.sci(), "1.00e+24");
}

TEST(BoxAlgebra, RandomizedAgainstBruteForce) {
  Rng R(1234);
  for (int Trial = 0; Trial != 50; ++Trial) {
    auto RandBoxes = [&R](size_t N) {
      std::vector<Box> Bs;
      for (size_t I = 0; I != N; ++I) {
        int64_t XL = R.range(0, 15), XH = R.range(XL - 2, 15);
        int64_t YL = R.range(0, 15), YH = R.range(YL - 2, 15);
        Bs.push_back(Box({{XL, XH}, {YL, YH}})); // may be empty
      }
      return Bs;
    };
    std::vector<Box> A = RandBoxes(4), B = RandBoxes(3);
    EXPECT_EQ(differenceVolume(A, B, 2).toInt64(),
              bruteDifference(A, B, 0, 15))
        << "trial " << Trial;
    EXPECT_EQ(unionVolume(A, 2).toInt64(), bruteDifference(A, {}, 0, 15))
        << "trial " << Trial;
  }
}

TEST(BoxAlgebra, ForEachCellEarlyStop) {
  std::vector<Box> A{box(0, 9, 0, 9)};
  int Cells = 0;
  forEachCell({&A}, 2, [&Cells](const BigCount &, const std::vector<bool> &) {
    ++Cells;
    return false; // stop immediately
  });
  EXPECT_EQ(Cells, 1);
}
