//===- tests/domains/BoxTest.cpp - Box unit tests --------------------------===//

#include "domains/Box.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

Box box(int64_t XL, int64_t XH, int64_t YL, int64_t YH) {
  return Box({{XL, XH}, {YL, YH}});
}

} // namespace

TEST(Box, TopCoversSchema) {
  Box T = Box::top(userLoc());
  EXPECT_FALSE(T.isEmpty());
  EXPECT_EQ(T.arity(), 2u);
  EXPECT_EQ(T.volume().toInt64(), 401 * 401);
  EXPECT_TRUE(T.contains({0, 0}));
  EXPECT_TRUE(T.contains({400, 400}));
  EXPECT_FALSE(T.contains({401, 0}));
}

TEST(Box, BottomIsEmpty) {
  Box B = Box::bottom(2);
  EXPECT_TRUE(B.isEmpty());
  EXPECT_TRUE(B.volume().isZero());
  EXPECT_FALSE(B.contains({0, 0}));
}

TEST(Box, EmptyDimensionPropagates) {
  Box B({{0, 10}, Interval::empty()});
  EXPECT_TRUE(B.isEmpty());
  // Canonicalization makes all empty boxes of one arity equal.
  EXPECT_EQ(B, Box::bottom(2));
}

TEST(Box, PointBox) {
  Box P = Box::point({300, 200});
  EXPECT_TRUE(P.isUnit());
  EXPECT_EQ(P.volume().toInt64(), 1);
  EXPECT_EQ(P.center(), (Point{300, 200}));
}

TEST(Box, ContainsIsPerDimension) {
  Box B = box(121, 279, 179, 221); // the paper's §3 post1 region
  EXPECT_TRUE(B.contains({200, 200}));
  EXPECT_TRUE(B.contains({121, 179}));
  EXPECT_FALSE(B.contains({120, 200}));
  EXPECT_FALSE(B.contains({200, 222}));
}

TEST(Box, PaperPost1Volume) {
  // §3: post1 = {121..279, 179..221}, |post1| = 6837.
  EXPECT_EQ(box(121, 279, 179, 221).volume().toInt64(), 6837);
  // §3: post2 = {221..279, 179..221}, |post2| = 2537.
  EXPECT_EQ(box(221, 279, 179, 221).volume().toInt64(), 2537);
}

TEST(Box, SubsetOf) {
  EXPECT_TRUE(box(2, 3, 2, 3).subsetOf(box(0, 5, 0, 5)));
  EXPECT_FALSE(box(0, 5, 0, 5).subsetOf(box(2, 3, 2, 3)));
  EXPECT_TRUE(Box::bottom(2).subsetOf(box(2, 3, 2, 3)));
  EXPECT_FALSE(box(2, 3, 2, 3).subsetOf(Box::bottom(2)));
  EXPECT_TRUE(box(0, 5, 2, 3).subsetOf(box(0, 5, 2, 3)));
}

TEST(Box, IntersectMatchesSetSemantics) {
  Box A = box(0, 10, 0, 10), B = box(5, 15, 5, 15);
  Box I = A.intersect(B);
  EXPECT_EQ(I, box(5, 10, 5, 10));
  EXPECT_TRUE(A.intersect(box(11, 12, 0, 10)).isEmpty());
  EXPECT_TRUE(A.intersect(Box::bottom(2)).isEmpty());
}

TEST(Box, Hull) {
  EXPECT_EQ(box(0, 1, 0, 1).hull(box(5, 6, 5, 6)), box(0, 6, 0, 6));
  EXPECT_EQ(Box::bottom(2).hull(box(5, 6, 5, 6)), box(5, 6, 5, 6));
}

TEST(Box, WithDim) {
  Box B = box(0, 10, 0, 10).withDim(1, {3, 4});
  EXPECT_EQ(B, box(0, 10, 3, 4));
}

TEST(Box, WidestDim) {
  EXPECT_EQ(box(0, 10, 0, 3).widestDim(), 0u);
  EXPECT_EQ(box(0, 2, 0, 30).widestDim(), 1u);
}

TEST(Box, SplitCoversAndPartitions) {
  Box B = box(0, 10, 0, 4);
  auto [L, R] = B.splitAt(0);
  EXPECT_EQ(L.volume() + R.volume(), B.volume());
  EXPECT_TRUE(L.intersect(R).isEmpty());
  EXPECT_TRUE(L.subsetOf(B));
  EXPECT_TRUE(R.subsetOf(B));
}

TEST(Box, SplitOddWidth) {
  Box B = Box({{0, 2}});
  auto [L, R] = B.splitAt(0);
  EXPECT_EQ(L.volume() + R.volume(), B.volume());
  EXPECT_FALSE(L.isEmpty());
  EXPECT_FALSE(R.isEmpty());
}

TEST(Box, Str) {
  EXPECT_EQ(box(1, 2, 3, 4).str(), "[1, 2] x [3, 4]");
  EXPECT_EQ(Box::bottom(2).str(), "<empty/2>");
}

// Regression (ISSUE 5): splitAt and center went through the naive signed
// midpoint, which overflows (UB) on full- and near-full-range dimensions;
// the old wraparound split produced the degenerate [MIN, MIN] / rest pair.
TEST(Box, SplitAtFullRange) {
  Box Full({{INT64_MIN, INT64_MAX}});
  auto [L, R] = Full.splitAt(0);
  EXPECT_EQ(L.dim(0), (Interval{INT64_MIN, -1}));
  EXPECT_EQ(R.dim(0), (Interval{0, INT64_MAX}));
  EXPECT_EQ((L.volume() + R.volume()).str(), Full.volume().str());
  EXPECT_TRUE(L.intersect(R).isEmpty());
}

TEST(Box, SplitAtNearFullRange) {
  Box B({{INT64_MIN + 1, INT64_MAX}});
  auto [L, R] = B.splitAt(0);
  EXPECT_EQ(L.dim(0), (Interval{INT64_MIN + 1, 0}));
  EXPECT_EQ(R.dim(0), (Interval{1, INT64_MAX}));
  EXPECT_EQ((L.volume() + R.volume()).str(), B.volume().str());
}

TEST(Box, CenterFullRange) {
  Box Full({{INT64_MIN, INT64_MAX}, {0, INT64_MAX}});
  Point C = Full.center();
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C[0], -1);
  EXPECT_EQ(C[1], INT64_MAX / 2);
  EXPECT_TRUE(Full.contains(C));
}
