//===- tests/domains/PowerBoxTest.cpp - PowerBox unit tests ---------------===//

#include "domains/PowerBox.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

Box box(int64_t XL, int64_t XH, int64_t YL, int64_t YH) {
  return Box({{XL, XH}, {YL, YH}});
}

} // namespace

TEST(PowerBox, TopAndBottom) {
  Schema S = userLoc();
  PowerBox T = PowerBox::top(S);
  PowerBox B = PowerBox::bottom(S);
  EXPECT_EQ(T.size().toInt64(), 401 * 401);
  EXPECT_TRUE(B.size().isZero());
  EXPECT_TRUE(B.isEmptySet());
  EXPECT_TRUE(T.member({200, 200}));
  EXPECT_FALSE(B.member({200, 200}));
}

TEST(PowerBox, MemberRespectsExcludes) {
  PowerBox P(2, {box(0, 9, 0, 9)}, {box(3, 6, 3, 6)});
  EXPECT_TRUE(P.member({0, 0}));
  EXPECT_FALSE(P.member({4, 4}));
  EXPECT_TRUE(P.member({3, 2}));
  EXPECT_FALSE(P.member({10, 10}));
}

TEST(PowerBox, SizeIsExactUnderOverlap) {
  // Two overlapping includes: 4x4 + 4x4 overlapping in 2x4 = 16+16-8 = 24.
  PowerBox P(2, {box(0, 3, 0, 3), box(2, 5, 0, 3)}, {});
  EXPECT_EQ(P.size().toInt64(), 24);
  // The paper's linear estimate double-counts the overlap.
  EXPECT_EQ(P.sizeLinearEstimate().toInt64(), 32);
}

TEST(PowerBox, SizeWithExcludes) {
  PowerBox P(2, {box(0, 9, 0, 9)}, {box(0, 9, 0, 4)});
  EXPECT_EQ(P.size().toInt64(), 50);
}

TEST(PowerBox, NormalizeDropsUselessBoxes) {
  PowerBox P(2,
             {box(0, 9, 0, 9), box(2, 3, 2, 3), Box::bottom(2)},
             {box(100, 110, 100, 110), Box::bottom(2)});
  // The subsumed include, the empty boxes, and the exclude that touches no
  // include are all gone.
  EXPECT_EQ(P.includes().size(), 1u);
  EXPECT_TRUE(P.excludes().empty());
}

TEST(PowerBox, NormalizeDropsFullyExcludedIncludes) {
  PowerBox P(2, {box(0, 1, 0, 1), box(5, 6, 5, 6)}, {box(0, 2, 0, 2)});
  EXPECT_EQ(P.includes().size(), 1u);
  EXPECT_EQ(P.size().toInt64(), 4);
}

TEST(PowerBox, SubsetOfExact) {
  PowerBox Small(2, {box(1, 2, 1, 2)}, {});
  PowerBox Big(2, {box(0, 9, 0, 9)}, {});
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_FALSE(Big.subsetOf(Small));
  // Subset through a *union*: [0,9] = [0,4] ∪ [5,9] — the syntactic §4.4
  // criterion cannot see this, the exact one can.
  PowerBox Halves(2, {box(0, 4, 0, 9), box(5, 9, 0, 9)}, {});
  EXPECT_TRUE(Big.subsetOf(Halves));
  EXPECT_FALSE(Big.subsetOfSyntactic(Halves));
  EXPECT_TRUE(Small.subsetOfSyntactic(Big));
}

TEST(PowerBox, SubsetOfWithExcludes) {
  PowerBox Holey(2, {box(0, 9, 0, 9)}, {box(3, 6, 3, 6)});
  PowerBox Full(2, {box(0, 9, 0, 9)}, {});
  EXPECT_TRUE(Holey.subsetOf(Full));
  EXPECT_FALSE(Full.subsetOf(Holey));
}

TEST(PowerBox, IntersectPairwise) {
  PowerBox A(2, {box(0, 5, 0, 5)}, {});
  PowerBox B(2, {box(3, 9, 3, 9)}, {});
  PowerBox I = A.intersect(B);
  EXPECT_EQ(I.size().toInt64(), 9); // [3,5]^2
  EXPECT_TRUE(I.subsetOf(A));
  EXPECT_TRUE(I.subsetOf(B));
}

TEST(PowerBox, IntersectMergesExcludes) {
  PowerBox A(2, {box(0, 9, 0, 9)}, {box(0, 1, 0, 1)});
  PowerBox B(2, {box(0, 9, 0, 9)}, {box(8, 9, 8, 9)});
  PowerBox I = A.intersect(B);
  EXPECT_EQ(I.size().toInt64(), 100 - 4 - 4);
  EXPECT_FALSE(I.member({0, 0}));
  EXPECT_FALSE(I.member({9, 9}));
  EXPECT_TRUE(I.member({5, 5}));
}

TEST(PowerBox, IntersectionSemanticsRandomized) {
  Rng R(77);
  for (int Trial = 0; Trial != 30; ++Trial) {
    auto RandPB = [&R]() {
      std::vector<Box> Inc, Exc;
      for (int I = 0, N = static_cast<int>(R.range(1, 3)); I != N; ++I) {
        int64_t XL = R.range(0, 12), YL = R.range(0, 12);
        Inc.push_back(Box({{XL, R.range(XL, 14)}, {YL, R.range(YL, 14)}}));
      }
      if (R.range(0, 1)) {
        int64_t XL = R.range(0, 12), YL = R.range(0, 12);
        Exc.push_back(Box({{XL, R.range(XL, 14)}, {YL, R.range(YL, 14)}}));
      }
      return PowerBox(2, std::move(Inc), std::move(Exc));
    };
    PowerBox A = RandPB(), B = RandPB();
    PowerBox I = A.intersect(B);
    for (int64_t X = 0; X <= 14; ++X)
      for (int64_t Y = 0; Y <= 14; ++Y) {
        Point P{X, Y};
        EXPECT_EQ(I.member(P), A.member(P) && B.member(P))
            << "trial " << Trial << " at (" << X << "," << Y << ")";
      }
  }
}

TEST(PowerBox, PruneForUnderOnlyShrinks) {
  std::vector<Box> Inc;
  for (int I = 0; I != 10; ++I)
    Inc.push_back(box(I * 20, I * 20 + I, 0, 9)); // growing volumes
  PowerBox P(2, Inc, {});
  BigCount Before = P.size();
  PowerBox Pruned = P;
  Pruned.pruneForUnder(4);
  EXPECT_LE(Pruned.includes().size(), 4u);
  EXPECT_TRUE(Pruned.subsetOf(P));
  EXPECT_TRUE(Pruned.size() <= Before);
  // The largest boxes were kept.
  EXPECT_TRUE(Pruned.member({186, 5})); // box 9: [180,189]
}

TEST(PowerBox, EqualityIsSemantic) {
  PowerBox A(2, {box(0, 9, 0, 9)}, {});
  PowerBox B(2, {box(0, 4, 0, 9), box(5, 9, 0, 9)}, {});
  EXPECT_TRUE(A == B);
}

TEST(PowerBox, FromBox) {
  PowerBox P = PowerBox::fromBox(box(1, 2, 3, 4));
  EXPECT_EQ(P.size().toInt64(), 4);
  PowerBox E = PowerBox::fromBox(Box::bottom(2));
  EXPECT_TRUE(E.isEmptySet());
}

TEST(PowerBox, StrRendering) {
  PowerBox P(2, {box(0, 1, 0, 1)}, {box(0, 0, 0, 0)});
  EXPECT_EQ(P.str(), "{[0, 1] x [0, 1]} \\ {[0, 0] x [0, 0]}");
}
