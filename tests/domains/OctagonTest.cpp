//===- tests/domains/OctagonTest.cpp - Octagon domain unit tests ----------===//
//
// Closure, meet, join, emptiness, and cardinality laws for the octagon
// domain, checked against brute-force enumeration: closure must preserve
// the integer point set exactly, emptiness may only be claimed when no
// point satisfies the raw constraints, and the cardinality bound must
// never under-count (and is exact on 2-field octagons).
//
//===----------------------------------------------------------------------===//

#include "domains/Octagon.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

using namespace anosy;

namespace {

/// One raw ±x±y ≤ c constraint, kept alongside the octagon so tests can
/// re-check satisfaction without the closure machinery.
struct RawConstraint {
  enum Kind { Upper, Lower, SumUpper, SumLower, DiffUpper } K;
  size_t I = 0, J = 0;
  int64_t C = 0;

  bool sat(const Point &P) const {
    switch (K) {
    case Upper:
      return P[I] <= C;
    case Lower:
      return P[I] >= C;
    case SumUpper:
      return P[I] + P[J] <= C;
    case SumLower:
      return P[I] + P[J] >= C;
    case DiffUpper:
      return P[I] - P[J] <= C;
    }
    return false;
  }

  void addTo(Octagon &O) const {
    switch (K) {
    case Upper:
      O.addUpperBound(I, C);
      return;
    case Lower:
      O.addLowerBound(I, C);
      return;
    case SumUpper:
      O.addSumUpper(I, J, C);
      return;
    case SumLower:
      O.addSumLower(I, J, C);
      return;
    case DiffUpper:
      O.addDiffUpper(I, J, C);
      return;
    }
  }
};

/// Enumerates the 2-D base grid [Lo,Hi]^2.
template <typename Fn> void forGrid(int64_t Lo, int64_t Hi, Fn F) {
  for (int64_t X = Lo; X <= Hi; ++X)
    for (int64_t Y = Lo; Y <= Hi; ++Y)
      F(Point{X, Y});
}

/// The Manhattan ball |x−cx| + |y−cy| ≤ r as an octagon over \p Base.
Octagon manhattanBall(const Box &Base, int64_t CX, int64_t CY, int64_t R) {
  Octagon O = Octagon::fromBox(Base);
  O.addSumUpper(0, 1, CX + CY + R);  //  (x−cx) + (y−cy) ≤ r
  O.addSumLower(0, 1, CX + CY - R);  // −(x−cx) − (y−cy) ≤ r
  O.addDiffUpper(0, 1, CX - CY + R); //  (x−cx) − (y−cy) ≤ r
  O.addDiffUpper(1, 0, CY - CX + R); // −(x−cx) + (y−cy) ≤ r
  O.close();
  return O;
}

} // namespace

TEST(Octagon, FromBoxRoundTripsThroughToBox) {
  Box B({{-3, 7}, {0, 12}});
  Octagon O = Octagon::fromBox(B);
  EXPECT_FALSE(O.isEmpty());
  EXPECT_EQ(O.toBox(), B);
  EXPECT_EQ(O.cardinalityBound(), B.volume());
  EXPECT_TRUE(Octagon::fromBox(Box::bottom(2)).isEmpty());
}

TEST(Octagon, ManhattanBallIsExact) {
  // The §2 running example in miniature: the radius-3 ball holds
  // 2r(r+1)+1 = 25 points, while its bounding box holds 49.
  Box Base({{0, 20}, {0, 20}});
  Octagon O = manhattanBall(Base, 10, 10, 3);
  EXPECT_EQ(O.toBox(), Box({{7, 13}, {7, 13}}));
  EXPECT_EQ(O.cardinalityBound(), BigCount(25));
  EXPECT_TRUE(O.contains({10, 13}));
  EXPECT_TRUE(O.contains({12, 11}));
  EXPECT_FALSE(O.contains({13, 13})); // corner of the box, not the ball
}

TEST(Octagon, CloseDetectsEmptiness) {
  Octagon O = Octagon::fromBox(Box({{0, 10}, {0, 10}}));
  O.addDiffUpper(0, 1, -1); // x < y
  O.addDiffUpper(1, 0, -1); // y < x
  O.close();
  EXPECT_TRUE(O.isEmpty());

  Octagon P = Octagon::fromBox(Box({{0, 10}, {0, 10}}));
  P.addSumUpper(0, 1, 3);
  P.addSumLower(0, 1, 5);
  P.close();
  EXPECT_TRUE(P.isEmpty());
}

TEST(Octagon, TightIntegerClosureRoundsHalfBounds) {
  // 2x ≤ 5 has no integer witness for x = 2.5; tight closure rounds the
  // unary bound down to x ≤ 2.
  Octagon O = Octagon::fromBox(Box({{0, 10}}));
  O.addSumUpper(0, 0, 5);
  O.close();
  EXPECT_EQ(O.toBox(), Box({{0, 2}}));

  // x + y ≥ 1 and x − y ≥ 1 and x ≤ 1 pin x = 1 over the integers and
  // leave y = 0 as the only choice.
  Octagon P = Octagon::fromBox(Box({{0, 1}, {0, 5}}));
  P.addSumLower(0, 1, 1);
  P.addDiffUpper(1, 0, -1);
  P.close();
  ASSERT_FALSE(P.isEmpty());
  EXPECT_EQ(P.toBox(), Box({{1, 1}, {0, 0}}));
}

TEST(Octagon, IntegerEmptinessViaTightening) {
  // x + y is both ≥ and ≤ constrained so that only half-integral points
  // would fit: 1 ≤ 2x ≤ 1 after substitution. Rationals exist (x = 0.5)
  // but no integer point does; tightening must detect it.
  Octagon O = Octagon::fromBox(Box({{-5, 5}, {-5, 5}}));
  O.addSumUpper(0, 1, 0);  // x + y ≤ 0
  O.addSumLower(0, 1, 0);  // x + y ≥ 0
  O.addDiffUpper(0, 1, 1); // x − y ≤ 1
  O.addDiffUpper(1, 0, 0); // y − x ≤ 0  →  2x ∈ [?]; x−y=1 forced, odd sum
  O.close();
  // x + y = 0 ∧ 0 ≤ x − y ≤ 1 forces x − y ∈ {0, 1}; x−y=1 gives x=1/2,
  // x−y=0 gives x=0 — which IS integral, so this one must stay non-empty.
  ASSERT_FALSE(O.isEmpty());
  EXPECT_EQ(O.toBox(), Box({{0, 0}, {0, 0}}));

  // Now exclude the integral solution: x − y ≥ 1 exactly.
  Octagon P = Octagon::fromBox(Box({{-5, 5}, {-5, 5}}));
  P.addSumUpper(0, 1, 0);
  P.addSumLower(0, 1, 0);
  P.addDiffUpper(0, 1, 1);
  P.addDiffUpper(1, 0, -1); // y − x ≤ −1  →  x − y = 1, x = 1/2 only
  P.close();
  EXPECT_TRUE(P.isEmpty());
}

TEST(Octagon, MeetAndJoinLaws) {
  Box Base({{0, 20}, {0, 20}});
  Octagon A = manhattanBall(Base, 8, 8, 3);
  Octagon B = manhattanBall(Base, 12, 12, 3);
  Octagon M = A.meet(B);
  EXPECT_TRUE(M.subsetOf(A));
  EXPECT_TRUE(M.subsetOf(B));
  // Balls at L1 distance 8 with radii 3+3 < 8 are disjoint.
  EXPECT_TRUE(M.isEmpty());

  Octagon J = A.join(B);
  EXPECT_TRUE(A.subsetOf(J));
  EXPECT_TRUE(B.subsetOf(J));
  // The join hull of two diagonal balls keeps the diagonal band: it is
  // strictly smaller than the bounding box of the union.
  EXPECT_TRUE(J.cardinalityBound() < J.toBox().volume());
  EXPECT_TRUE(J.contains({10, 10})); // between the balls, inside the hull
}

TEST(Octagon, JoinWithEmptyIsIdentity) {
  Octagon A = manhattanBall(Box({{0, 20}, {0, 20}}), 10, 10, 2);
  EXPECT_EQ(A.join(Octagon::bottom(2)), A);
  EXPECT_EQ(Octagon::bottom(2).join(A), A);
  EXPECT_TRUE(A.meet(Octagon::bottom(2)).isEmpty());
}

TEST(Octagon, ClosurePreservesPointSetOnRandomOctagons) {
  // The load-bearing law behind every verdict: closure adds only implied
  // constraints (same integer point set), claims emptiness only when no
  // point satisfies the raw constraints, and the cardinality bound is
  // exact on 2-field octagons.
  Rng R(0x0C7A);
  const int64_t Lo = -6, Hi = 6;
  Box Base({{Lo, Hi}, {Lo, Hi}});
  for (unsigned Iter = 0; Iter != 200; ++Iter) {
    std::vector<RawConstraint> Raw;
    unsigned N = 1 + static_cast<unsigned>(R.range(0, 3));
    for (unsigned K = 0; K != N; ++K) {
      RawConstraint C;
      C.K = static_cast<RawConstraint::Kind>(R.range(0, 4));
      C.I = static_cast<size_t>(R.range(0, 1));
      C.J = 1 - C.I;
      C.C = R.range(-14, 14);
      Raw.push_back(C);
    }
    Octagon O = Octagon::fromBox(Base);
    for (const RawConstraint &C : Raw)
      C.addTo(O);
    O.close();

    int64_t Exact = 0;
    forGrid(Lo, Hi, [&](const Point &P) {
      bool Sat = true;
      for (const RawConstraint &C : Raw)
        Sat = Sat && C.sat(P);
      if (Sat)
        ++Exact;
      EXPECT_EQ(O.contains(P), Sat)
          << "closure changed membership of (" << P[0] << "," << P[1] << ")";
    });
    EXPECT_EQ(O.isEmpty(), Exact == 0);
    if (!O.isEmpty())
      EXPECT_EQ(O.cardinalityBound(), BigCount(Exact))
          << "pair sweep must be exact on 2-field octagons";
  }
}

TEST(Octagon, CardinalityExactOnHugeDomains) {
  // The closed-form pair count is width-independent: an interior
  // Manhattan ball of radius 70000 holds 2r(r+1)+1 points, far past any
  // feasible enumeration (and past the 2^16 sweep cap an iterative count
  // would need).
  const int64_t R = 70000;
  Octagon O =
      manhattanBall(Box({{0, 300000}, {0, 300000}}), 150000, 150000, R);
  O.close();
  BigCount Expect(2 * R * (R + 1) + 1);
  EXPECT_EQ(O.cardinalityBound(), Expect);
  // Clipped by a corner: count the quarter ball plus its two half axes
  // and center, i.e. (r+1)(r+2)/2 points of x+y ≤ r in the quadrant.
  Octagon C = manhattanBall(Box({{0, 300000}, {0, 300000}}), 0, 0, R);
  C.close();
  EXPECT_EQ(C.cardinalityBound(), BigCount((R + 1) * (R + 2) / 2));
}

TEST(Octagon, CardinalityBoundThreeFieldsIsUpperBound) {
  // With 3 fields the bound is pair-exact × box-rest: still sound, and
  // strictly better than the plain box product when a pair is coupled.
  Octagon O = Octagon::fromBox(Box({{0, 9}, {0, 9}, {0, 4}}));
  O.addSumUpper(0, 1, 9); // x + y ≤ 9: half the 10x10 square (plus diag)
  O.close();
  int64_t Exact = 0;
  for (int64_t X = 0; X <= 9; ++X)
    for (int64_t Y = 0; Y <= 9; ++Y)
      for (int64_t Z = 0; Z <= 4; ++Z)
        Exact += (X + Y <= 9) ? 1 : 0;
  BigCount Bound = O.cardinalityBound();
  EXPECT_TRUE(Bound >= Exact);
  EXPECT_TRUE(Bound < Box({{0, 9}, {0, 9}, {0, 4}}).volume());
  EXPECT_EQ(Bound, BigCount(55 * 5)); // pair count is exact, × width(z)
}

TEST(Octagon, SubsetOfAgreesWithMembershipSampling) {
  Box Base({{0, 20}, {0, 20}});
  Octagon Small = manhattanBall(Base, 10, 10, 2);
  Octagon Large = manhattanBall(Base, 10, 10, 5);
  EXPECT_TRUE(Small.subsetOf(Large));
  EXPECT_FALSE(Large.subsetOf(Small));
  forGrid(0, 20, [&](const Point &P) {
    if (Small.contains(P))
      EXPECT_TRUE(Large.contains(P));
  });
}

TEST(Octagon, StrRendersRelationalConstraints) {
  Octagon O = manhattanBall(Box({{0, 20}, {0, 20}}), 10, 10, 3);
  std::string S = O.str();
  EXPECT_NE(S.find("[7, 13] x [7, 13]"), std::string::npos) << S;
  EXPECT_NE(S.find("x0+x1<=23"), std::string::npos) << S;
  EXPECT_EQ(Octagon::bottom(2).str(), "<empty/2>");
}
