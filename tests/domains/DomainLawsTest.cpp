//===- tests/domains/DomainLawsTest.cpp - Fig. 3 class-law sweeps ---------===//
//
// The paper proves sizeLaw / subsetLaw once per AbstractDomain instance in
// Liquid Haskell. Here the laws are executable predicates, swept over
// randomized domain values and probe points for both instances (TEST_P
// over RNG seeds). A law failure prints the offending pair.
//
//===----------------------------------------------------------------------===//

#include "domains/AbstractDomain.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema smallSchema() { return Schema("S", {{"a", 0, 20}, {"b", 0, 20}}); }

Box randomBox(Rng &R) {
  int64_t XL = R.range(0, 20), YL = R.range(0, 20);
  // One in five boxes is empty.
  if (R.range(0, 4) == 0)
    return Box::bottom(2);
  return Box({{XL, R.range(XL, 20)}, {YL, R.range(YL, 20)}});
}

PowerBox randomPowerBox(Rng &R) {
  std::vector<Box> Inc, Exc;
  for (int I = 0, N = static_cast<int>(R.range(0, 3)); I != N; ++I)
    Inc.push_back(randomBox(R));
  for (int I = 0, N = static_cast<int>(R.range(0, 2)); I != N; ++I)
    Exc.push_back(randomBox(R));
  return PowerBox(2, std::move(Inc), std::move(Exc));
}

Point randomPoint(Rng &R) { return {R.range(0, 20), R.range(0, 20)}; }

template <AbstractDomain D> D randomDomain(Rng &R);
template <> Box randomDomain<Box>(Rng &R) { return randomBox(R); }
template <> PowerBox randomDomain<PowerBox>(Rng &R) {
  return randomPowerBox(R);
}

/// One sweep of all Fig. 3 laws for domain D at a given seed.
template <AbstractDomain D> void sweepLaws(uint64_t Seed) {
  Rng R(Seed);
  Schema S = smallSchema();
  D Top = DomainTraits<D>::top(S);
  D Bot = DomainTraits<D>::bottom(S);

  // ⊤ contains everything, ⊥ nothing (the Fig. 3 index semantics).
  for (int I = 0; I != 20; ++I) {
    Point P = randomPoint(R);
    EXPECT_TRUE(DomainTraits<D>::member(Top, P));
    EXPECT_FALSE(DomainTraits<D>::member(Bot, P));
  }
  EXPECT_EQ(DomainTraits<D>::size(Top), S.totalSize());
  EXPECT_TRUE(DomainTraits<D>::size(Bot).isZero());

  for (int Trial = 0; Trial != 40; ++Trial) {
    D D1 = randomDomain<D>(R);
    D D2 = randomDomain<D>(R);

    // sizeLaw: d1 ⊆ d2 ⇒ size d1 ≤ size d2.
    EXPECT_TRUE(checkSizeLaw(D1, D2))
        << DomainTraits<D>::str(D1) << " vs " << DomainTraits<D>::str(D2);
    EXPECT_TRUE(checkSizeLaw(D2, D1));
    EXPECT_TRUE(checkSizeLaw(Bot, D1));
    EXPECT_TRUE(checkSizeLaw(D1, Top));

    // subsetLaw: d1 ⊆ d2 ⇒ (c ∈ d1 ⇒ c ∈ d2).
    for (int I = 0; I != 10; ++I) {
      Point C = randomPoint(R);
      EXPECT_TRUE(checkSubsetLaw(C, D1, D2));
      EXPECT_TRUE(checkSubsetLaw(C, D1, Top));
      EXPECT_TRUE(checkSubsetLaw(C, Bot, D1));
    }

    // Fig. 3 refinement on ∩.
    EXPECT_TRUE(checkIntersectLaw(D1, D2))
        << DomainTraits<D>::str(D1) << " vs " << DomainTraits<D>::str(D2);

    // ∩ semantics: membership is pointwise conjunction.
    D I12 = DomainTraits<D>::intersect(D1, D2);
    for (int I = 0; I != 10; ++I) {
      Point C = randomPoint(R);
      EXPECT_EQ(DomainTraits<D>::member(I12, C),
                DomainTraits<D>::member(D1, C) &&
                    DomainTraits<D>::member(D2, C));
    }

    // ⊆ is reflexive and transitive on the sampled values.
    EXPECT_TRUE(DomainTraits<D>::subset(D1, D1));
    D D3 = randomDomain<D>(R);
    if (DomainTraits<D>::subset(D1, D2) && DomainTraits<D>::subset(D2, D3)) {
      EXPECT_TRUE(DomainTraits<D>::subset(D1, D3));
    }

    // size agrees with exhaustive membership counting.
    int64_t Brute = 0;
    for (int64_t X = 0; X <= 20; ++X)
      for (int64_t Y = 0; Y <= 20; ++Y)
        if (DomainTraits<D>::member(D1, {X, Y}))
          ++Brute;
    EXPECT_EQ(DomainTraits<D>::size(D1).toInt64(), Brute)
        << DomainTraits<D>::str(D1);
  }
}

class DomainLawSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomainLawSeeds, IntervalDomainLaws) { sweepLaws<Box>(GetParam()); }

TEST_P(DomainLawSeeds, PowersetDomainLaws) {
  sweepLaws<PowerBox>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainLawSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
