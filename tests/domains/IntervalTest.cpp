//===- tests/domains/IntervalTest.cpp - Interval unit tests ---------------===//

#include "domains/Interval.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Interval, EmptyCanonical) {
  EXPECT_TRUE(Interval::empty().isEmpty());
  EXPECT_TRUE((Interval{5, 2}).isEmpty());
  EXPECT_FALSE((Interval{2, 2}).isEmpty());
  EXPECT_EQ(Interval::empty(), (Interval{10, 3}));
}

TEST(Interval, Contains) {
  Interval I{-3, 7};
  EXPECT_TRUE(I.contains(-3));
  EXPECT_TRUE(I.contains(7));
  EXPECT_TRUE(I.contains(0));
  EXPECT_FALSE(I.contains(-4));
  EXPECT_FALSE(I.contains(8));
  EXPECT_FALSE(Interval::empty().contains(0));
}

TEST(Interval, SubsetOf) {
  Interval Big{0, 10}, Small{2, 5};
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_FALSE(Big.subsetOf(Small));
  EXPECT_TRUE(Big.subsetOf(Big));
  EXPECT_TRUE(Interval::empty().subsetOf(Small));
  EXPECT_TRUE(Interval::empty().subsetOf(Interval::empty()));
  EXPECT_FALSE(Small.subsetOf(Interval::empty()));
}

TEST(Interval, Intersect) {
  EXPECT_EQ((Interval{0, 5}).intersect({3, 9}), (Interval{3, 5}));
  EXPECT_TRUE((Interval{0, 2}).intersect({3, 9}).isEmpty());
  EXPECT_EQ((Interval{0, 9}).intersect({0, 9}), (Interval{0, 9}));
  EXPECT_TRUE(Interval::empty().intersect({0, 9}).isEmpty());
}

TEST(Interval, Hull) {
  EXPECT_EQ((Interval{0, 2}).hull({5, 9}), (Interval{0, 9}));
  EXPECT_EQ(Interval::empty().hull({5, 9}), (Interval{5, 9}));
  EXPECT_EQ((Interval{5, 9}).hull(Interval::empty()), (Interval{5, 9}));
}

TEST(Interval, Width) {
  EXPECT_EQ((Interval{3, 3}).width().toInt64(), 1);
  EXPECT_EQ((Interval{0, 9}).width().toInt64(), 10);
  EXPECT_TRUE(Interval::empty().width().isZero());
  EXPECT_EQ((Interval{-5, 5}).width().toInt64(), 11);
}

// Regression (ISSUE 5): the removed widthInt64() asserted on full-range
// intervals; width() must represent 2^64 and near-2^63 widths exactly.
TEST(Interval, WidthFullRange) {
  Interval Full{INT64_MIN, INT64_MAX};
  EXPECT_FALSE(Full.width().fitsInt64());
  EXPECT_EQ(Full.width().str(), "18446744073709551616"); // 2^64
  Interval NearFull{INT64_MIN + 1, INT64_MAX};
  EXPECT_FALSE(NearFull.width().fitsInt64());
  Interval Half{INT64_MIN, -1};
  EXPECT_FALSE(Half.width().fitsInt64()); // 2^63
  Interval JustFits{1, INT64_MAX};
  EXPECT_TRUE(JustFits.width().fitsInt64());
  EXPECT_EQ(JustFits.width().toInt64(), INT64_MAX); // 2^63 - 1
}

// Regression (ISSUE 5): the naive Lo + (Hi - Lo) / 2 midpoint is signed
// overflow (UB) on full- and near-full-range intervals; midpoint() must
// be exact there and bit-identical to the naive form everywhere else.
TEST(Interval, MidpointFullRange) {
  EXPECT_EQ((Interval{INT64_MIN, INT64_MAX}).midpoint(), -1);
  EXPECT_EQ((Interval{INT64_MIN, INT64_MAX - 1}).midpoint(), -1);
  EXPECT_EQ((Interval{INT64_MIN + 1, INT64_MAX}).midpoint(), 0);
  EXPECT_EQ((Interval{INT64_MIN, 0}).midpoint(), INT64_MIN / 2);
  EXPECT_EQ((Interval{0, INT64_MAX}).midpoint(), INT64_MAX / 2);
  EXPECT_EQ((Interval{INT64_MAX, INT64_MAX}).midpoint(), INT64_MAX);
  EXPECT_EQ((Interval{INT64_MIN, INT64_MIN}).midpoint(), INT64_MIN);
}

TEST(Interval, MidpointMatchesNaiveFormOffOverflow) {
  for (int64_t Lo : {-100, -7, -1, 0, 1, 13}) {
    for (int64_t Hi : {-7, -1, 0, 1, 13, 100}) {
      if (Lo > Hi)
        continue;
      Interval I{Lo, Hi};
      EXPECT_EQ(I.midpoint(), Lo + (Hi - Lo) / 2) << I.str();
      EXPECT_TRUE(I.contains(I.midpoint())) << I.str();
    }
  }
}

TEST(Interval, PointConstructor) {
  Interval P = Interval::point(42);
  EXPECT_EQ(P.Lo, 42);
  EXPECT_EQ(P.Hi, 42);
  EXPECT_EQ(P.width().toInt64(), 1);
}

TEST(Interval, Str) {
  EXPECT_EQ((Interval{1, 4}).str(), "[1, 4]");
  EXPECT_EQ(Interval::empty().str(), "[]");
}
