//===- tests/domains/IntervalTest.cpp - Interval unit tests ---------------===//

#include "domains/Interval.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Interval, EmptyCanonical) {
  EXPECT_TRUE(Interval::empty().isEmpty());
  EXPECT_TRUE((Interval{5, 2}).isEmpty());
  EXPECT_FALSE((Interval{2, 2}).isEmpty());
  EXPECT_EQ(Interval::empty(), (Interval{10, 3}));
}

TEST(Interval, Contains) {
  Interval I{-3, 7};
  EXPECT_TRUE(I.contains(-3));
  EXPECT_TRUE(I.contains(7));
  EXPECT_TRUE(I.contains(0));
  EXPECT_FALSE(I.contains(-4));
  EXPECT_FALSE(I.contains(8));
  EXPECT_FALSE(Interval::empty().contains(0));
}

TEST(Interval, SubsetOf) {
  Interval Big{0, 10}, Small{2, 5};
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_FALSE(Big.subsetOf(Small));
  EXPECT_TRUE(Big.subsetOf(Big));
  EXPECT_TRUE(Interval::empty().subsetOf(Small));
  EXPECT_TRUE(Interval::empty().subsetOf(Interval::empty()));
  EXPECT_FALSE(Small.subsetOf(Interval::empty()));
}

TEST(Interval, Intersect) {
  EXPECT_EQ((Interval{0, 5}).intersect({3, 9}), (Interval{3, 5}));
  EXPECT_TRUE((Interval{0, 2}).intersect({3, 9}).isEmpty());
  EXPECT_EQ((Interval{0, 9}).intersect({0, 9}), (Interval{0, 9}));
  EXPECT_TRUE(Interval::empty().intersect({0, 9}).isEmpty());
}

TEST(Interval, Hull) {
  EXPECT_EQ((Interval{0, 2}).hull({5, 9}), (Interval{0, 9}));
  EXPECT_EQ(Interval::empty().hull({5, 9}), (Interval{5, 9}));
  EXPECT_EQ((Interval{5, 9}).hull(Interval::empty()), (Interval{5, 9}));
}

TEST(Interval, Width) {
  EXPECT_EQ((Interval{3, 3}).widthInt64(), 1);
  EXPECT_EQ((Interval{0, 9}).widthInt64(), 10);
  EXPECT_TRUE(Interval::empty().width().isZero());
  EXPECT_EQ((Interval{-5, 5}).widthInt64(), 11);
}

TEST(Interval, PointConstructor) {
  Interval P = Interval::point(42);
  EXPECT_EQ(P.Lo, 42);
  EXPECT_EQ(P.Hi, 42);
  EXPECT_EQ(P.widthInt64(), 1);
}

TEST(Interval, Str) {
  EXPECT_EQ((Interval{1, 4}).str(), "[1, 4]");
  EXPECT_EQ(Interval::empty().str(), "[]");
}
