//===- tests/expr/SimplifyTest.cpp - Normalization pass tests -------------===//

#include "expr/Simplify.h"

#include "gen/QueryGen.h"
#include "baselines/Exhaustive.h"
#include "expr/Eval.h"
#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema twoField() { return Schema("S", {{"a", 0, 12}, {"b", 0, 12}}); }

ExprRef q(const std::string &Src) {
  auto R = parseQueryExpr(twoField(), Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().str());
  return R.value();
}

} // namespace

TEST(Simplify, SelfDifferenceFolds) {
  EXPECT_EQ(simplify(q("a - a <= 3"))->kind(), ExprKind::BoolConst);
  EXPECT_TRUE(simplify(q("a - a <= 3"))->boolValue());
}

TEST(Simplify, SelfComparisonsFold) {
  EXPECT_TRUE(simplify(q("a == a"))->boolValue());
  EXPECT_TRUE(simplify(q("a <= a"))->boolValue());
  EXPECT_TRUE(simplify(q("a >= a"))->boolValue());
  EXPECT_FALSE(simplify(q("a != a"))->boolValue());
  EXPECT_FALSE(simplify(q("a < a"))->boolValue());
  EXPECT_FALSE(simplify(q("a > a"))->boolValue());
}

TEST(Simplify, IdempotentConnectivesFold) {
  ExprRef E = simplify(q("a <= 3 && a <= 3"));
  EXPECT_EQ(E->kind(), ExprKind::Cmp);
  ExprRef O = simplify(q("a <= 3 || a <= 3"));
  EXPECT_EQ(O->kind(), ExprKind::Cmp);
  ExprRef M = le(simplify(minOf(fieldRef(0), fieldRef(0))), intConst(3));
  EXPECT_EQ(M->operand(0)->kind(), ExprKind::FieldRef);
}

TEST(Simplify, NotOverComparisonFlips) {
  ExprRef E = simplify(q("!(a <= 3)"));
  ASSERT_EQ(E->kind(), ExprKind::Cmp);
  EXPECT_EQ(E->cmpOp(), CmpOp::GT);
}

TEST(Simplify, IteWithEqualArmsFolds) {
  ExprRef E = simplify(q("(if a < 3 then b else b) <= 5"));
  // The ite disappears entirely.
  EXPECT_EQ(E->operand(0)->kind(), ExprKind::FieldRef);
}

TEST(Simplify, Idempotent) {
  QueryGen Gen(91);
  for (int I = 0; I != 40; ++I) {
    ExprRef Q = Gen.genQuery();
    ExprRef S1 = simplify(Q);
    ExprRef S2 = simplify(S1);
    EXPECT_TRUE(Expr::structurallyEqual(*S1, *S2)) << Q->str();
  }
}

TEST(NNF, EliminatesImpliesAndInnerNots) {
  ExprRef E = toNNF(q("!(a <= 3 && !(b >= 2)) ==> a == b"));
  // Walk the result: no Not except over nothing, no Implies anywhere.
  std::function<void(const Expr &)> Walk = [&Walk](const Expr &N) {
    EXPECT_NE(N.kind(), ExprKind::Implies);
    EXPECT_NE(N.kind(), ExprKind::Not);
    if (N.isBoolSorted() && N.kind() != ExprKind::Cmp)
      for (const ExprRef &Op : N.operands())
        Walk(*Op);
  };
  Walk(*E);
}

TEST(NNF, DeMorganShape) {
  ExprRef E = toNNF(q("!(a <= 3 || b <= 4)"));
  ASSERT_EQ(E->kind(), ExprKind::And);
  EXPECT_EQ(E->operand(0)->cmpOp(), CmpOp::GT);
  EXPECT_EQ(E->operand(1)->cmpOp(), CmpOp::GT);
}

TEST(NNF, ConstantsRespectPolarity) {
  EXPECT_FALSE(toNNF(notOf(boolConst(true)))->boolValue());
  EXPECT_TRUE(toNNF(notOf(boolConst(false)))->boolValue());
}

namespace {

class NormalizationSemantics : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(NormalizationSemantics, PassesPreserveMeaning) {
  QueryGenConfig Config;
  Config.ConstLo = -15;
  Config.ConstHi = 15;
  QueryGen Gen(GetParam(), Config);
  Schema S = twoField();
  for (int I = 0; I != 30; ++I) {
    ExprRef Q = Gen.genQuery();
    ExprRef Simp = simplify(Q);
    ExprRef Nnf = toNNF(Q);
    ExprRef Both = toNNF(simplify(Q));
    forEachPoint(Box::top(S), [&](const Point &P) {
      bool Truth = evalBool(*Q, P);
      EXPECT_EQ(evalBool(*Simp, P), Truth) << Q->str();
      EXPECT_EQ(evalBool(*Nnf, P), Truth) << Q->str();
      EXPECT_EQ(evalBool(*Both, P), Truth) << Q->str();
      return true;
    });
    // simplify never grows the tree.
    EXPECT_LE(Simp->treeSize(), Q->treeSize()) << Q->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizationSemantics,
                         ::testing::Values(7, 42, 1337, 2024, 31415));
