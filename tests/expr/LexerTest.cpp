//===- tests/expr/LexerTest.cpp - Lexer unit tests -------------------------===//

#include "expr/Lexer.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Source) {
  auto R = tokenize(Source);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().str());
  std::vector<TokenKind> Kinds;
  for (const Token &T : R.value())
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(Lexer, EmptyInputYieldsEof) {
  auto Kinds = kindsOf("");
  ASSERT_EQ(Kinds.size(), 1u);
  EXPECT_EQ(Kinds[0], TokenKind::Eof);
}

TEST(Lexer, IdentifiersAndIntegers) {
  auto R = tokenize("nearby 42 x_1");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.value().size(), 4u);
  EXPECT_EQ(R.value()[0].Text, "nearby");
  EXPECT_EQ(R.value()[1].IntValue, 42);
  EXPECT_EQ(R.value()[2].Text, "x_1");
}

TEST(Lexer, OperatorMaximalMunch) {
  EXPECT_EQ(kindsOf("= == ==>"),
            (std::vector<TokenKind>{TokenKind::Assign, TokenKind::EqEq,
                                    TokenKind::Arrow, TokenKind::Eof}));
  EXPECT_EQ(kindsOf("< <= > >= ! !="),
            (std::vector<TokenKind>{TokenKind::Less, TokenKind::LessEq,
                                    TokenKind::Greater, TokenKind::GreaterEq,
                                    TokenKind::Bang, TokenKind::NotEq,
                                    TokenKind::Eof}));
}

TEST(Lexer, LogicalOperators) {
  EXPECT_EQ(kindsOf("&& ||"),
            (std::vector<TokenKind>{TokenKind::AndAnd, TokenKind::OrOr,
                                    TokenKind::Eof}));
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(kindsOf("( ) { } [ ] , : + - *"),
            (std::vector<TokenKind>{
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBrace,
                TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
                TokenKind::Comma, TokenKind::Colon, TokenKind::Plus,
                TokenKind::Minus, TokenKind::Star, TokenKind::Eof}));
}

TEST(Lexer, CommentsRunToEndOfLine) {
  auto Kinds = kindsOf("1 # everything here is skipped && ||\n2");
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{TokenKind::Integer,
                                           TokenKind::Integer,
                                           TokenKind::Eof}));
}

TEST(Lexer, TracksLineAndColumn) {
  auto R = tokenize("a\n  b");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value()[0].Line, 1u);
  EXPECT_EQ(R.value()[0].Column, 1u);
  EXPECT_EQ(R.value()[1].Line, 2u);
  EXPECT_EQ(R.value()[1].Column, 3u);
}

TEST(Lexer, RejectsUnknownCharacters) {
  auto R = tokenize("a @ b");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().code(), ErrorCode::ParseError);
  EXPECT_NE(R.error().message().find("'@'"), std::string::npos);
}

TEST(Lexer, RejectsLoneAmpersand) {
  EXPECT_FALSE(tokenize("a & b").ok());
  EXPECT_FALSE(tokenize("a | b").ok());
}

TEST(Lexer, RejectsOverflowingLiteral) {
  auto R = tokenize("99999999999999999999999999");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("overflow"), std::string::npos);
}

TEST(Lexer, Int64MaxLiteralAccepted) {
  auto R = tokenize("9223372036854775807");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value()[0].IntValue, INT64_MAX);
}
