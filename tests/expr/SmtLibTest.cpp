//===- tests/expr/SmtLibTest.cpp - SMT-LIB emission unit tests ------------===//

#include "expr/SmtLib.h"

#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

} // namespace

TEST(SmtLib, TermRendering) {
  Schema S = userLoc();
  auto Q = parseQueryExpr(S, "abs(x - 200) + abs(y - 200) <= 100");
  ASSERT_TRUE(Q.ok());
  EXPECT_EQ(toSmtLibTerm(*Q.value(), S),
            "(<= (+ (abs (- x 200)) (abs (- y 200))) 100)");
}

TEST(SmtLib, NegativeConstants) {
  Schema S("T", {{"lon", -100, 0}});
  auto Q = parseQueryExpr(S, "lon <= -50");
  ASSERT_TRUE(Q.ok());
  EXPECT_EQ(toSmtLibTerm(*Q.value(), S), "(<= lon (- 50))");
}

TEST(SmtLib, MinMaxBecomeIte) {
  Schema S = userLoc();
  auto Q = parseQueryExpr(S, "min(x, y) <= 3");
  ASSERT_TRUE(Q.ok());
  EXPECT_EQ(toSmtLibTerm(*Q.value(), S),
            "(<= (ite (<= x y) x y) 3)");
}

TEST(SmtLib, NeRendersAsNotEq) {
  Schema S = userLoc();
  auto Q = parseQueryExpr(S, "x != y");
  ASSERT_TRUE(Q.ok());
  EXPECT_EQ(toSmtLibTerm(*Q.value(), S), "(not (= x y))");
}

TEST(SmtLib, ConnectiveRendering) {
  Schema S = userLoc();
  auto Q = parseQueryExpr(S, "!(x == 1) && (y == 2 || x >= 3)");
  ASSERT_TRUE(Q.ok());
  EXPECT_EQ(toSmtLibTerm(*Q.value(), S),
            "(and (not (= x 1)) (or (= y 2) (>= x 3)))");
}

TEST(SmtLib, ScriptDeclaresBoundedFields) {
  Schema S = userLoc();
  auto Q = parseQueryExpr(S, "x <= y");
  ASSERT_TRUE(Q.ok());
  std::string Script = toSmtLibScript(*Q.value(), S);
  EXPECT_NE(Script.find("(set-logic QF_LIA)"), std::string::npos);
  EXPECT_NE(Script.find("(declare-const x Int)"), std::string::npos);
  EXPECT_NE(Script.find("(assert (and (<= 0 x) (<= x 400)))"),
            std::string::npos);
  EXPECT_NE(Script.find("(assert (<= x y))"), std::string::npos);
  EXPECT_NE(Script.find("(check-sat)"), std::string::npos);
}

TEST(SmtLib, SynthScriptUnderTrue) {
  Schema S = userLoc();
  auto Q = parseQueryExpr(S, "x <= 100");
  ASSERT_TRUE(Q.ok());
  std::string Script =
      toSynthConstraintScript(*Q.value(), S, /*Polarity=*/true,
                              /*Under=*/true);
  // The §2.3 (Under-approx, True) constraint: membership implies query.
  EXPECT_NE(Script.find("(declare-const l_x Int)"), std::string::npos);
  EXPECT_NE(Script.find("(declare-const u_y Int)"), std::string::npos);
  EXPECT_NE(Script.find("forall"), std::string::npos);
  EXPECT_NE(Script.find("(maximize (- u_x l_x))"), std::string::npos);
  EXPECT_NE(Script.find("(maximize (- u_y l_y))"), std::string::npos);
}

TEST(SmtLib, SynthScriptOverFalsePolarity) {
  Schema S = userLoc();
  auto Q = parseQueryExpr(S, "x <= 100");
  ASSERT_TRUE(Q.ok());
  std::string Script =
      toSynthConstraintScript(*Q.value(), S, /*Polarity=*/false,
                              /*Under=*/false);
  // Over-approximation minimizes widths and negates the query.
  EXPECT_NE(Script.find("(minimize (- u_x l_x))"), std::string::npos);
  EXPECT_NE(Script.find("(not (<= x 100))"), std::string::npos);
}
