//===- tests/expr/RoundTripTest.cpp - Printer/parser round trips ----------===//
//
// Property: pretty-printing any expression in the fragment and re-parsing
// it yields a semantically identical query (checked pointwise over the
// whole small secret space). This pins the printer's precedence and
// parenthesization against the parser's grammar.
//
//===----------------------------------------------------------------------===//

#include "gen/QueryGen.h"

#include "baselines/Exhaustive.h"
#include "expr/Eval.h"
#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema smallSchema() { return Schema("F", {{"a", 0, 12}, {"b", 0, 12}}); }

class RoundTrip : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RoundTrip, PrintParseIsSemanticIdentity) {
  QueryGenConfig Config;
  Config.ConstLo = -15;
  Config.ConstHi = 15;
  QueryGen Gen(GetParam(), Config);
  Schema S = smallSchema();
  for (int I = 0; I != 25; ++I) {
    ExprRef Q = Gen.genQuery();
    std::string Printed = Q->str(S);
    auto Reparsed = parseQueryExpr(S, Printed);
    ASSERT_TRUE(Reparsed.ok())
        << "failed to reparse: " << Printed << "\n  "
        << Reparsed.error().str();
    forEachPoint(Box::top(S), [&](const Point &P) {
      EXPECT_EQ(evalBool(*Q, P), evalBool(*Reparsed.value(), P))
          << Printed;
      return true;
    });
  }
}

TEST_P(RoundTrip, IntTermRoundTripThroughComparison) {
  QueryGen Gen(GetParam() + 500);
  Schema S = smallSchema();
  for (int I = 0; I != 25; ++I) {
    // Wrap a random linear term as "term <= 0" to route it through the
    // boolean entry point.
    ExprRef T = le(Gen.genTerm(), intConst(0));
    std::string Printed = T->str(S);
    auto Reparsed = parseQueryExpr(S, Printed);
    ASSERT_TRUE(Reparsed.ok()) << Printed;
    forEachPoint(Box::top(S), [&](const Point &P) {
      EXPECT_EQ(evalBool(*T, P), evalBool(*Reparsed.value(), P)) << Printed;
      return true;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(3, 14, 159, 2653, 58979));
