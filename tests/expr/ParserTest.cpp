//===- tests/expr/ParserTest.cpp - Parser/elaborator unit tests ------------===//

#include "expr/Parser.h"

#include "expr/Eval.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}

ExprRef parseOk(const Schema &S, const std::string &Src) {
  auto R = parseQueryExpr(S, Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().str());
  return R.ok() ? R.value() : nullptr;
}

} // namespace

TEST(Parser, SimpleComparison) {
  ExprRef E = parseOk(userLoc(), "x <= 100");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {100, 0}));
  EXPECT_FALSE(evalBool(*E, {101, 0}));
}

TEST(Parser, PrecedenceArithmeticOverComparison) {
  ExprRef E = parseOk(userLoc(), "x + 2 * y <= 10");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {4, 3}));   // 4 + 6 <= 10
  EXPECT_FALSE(evalBool(*E, {5, 3}));  // 11
}

TEST(Parser, PrecedenceAndBindsTighterThanOr) {
  // a || b && c must parse as a || (b && c).
  ExprRef E = parseOk(userLoc(), "x == 1 || x == 2 && y == 3");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {1, 0}));
  EXPECT_TRUE(evalBool(*E, {2, 3}));
  EXPECT_FALSE(evalBool(*E, {2, 4}));
}

TEST(Parser, ImpliesIsRightAssociative) {
  // a ==> b ==> c parses as a ==> (b ==> c).
  ExprRef E = parseOk(userLoc(), "x == 1 ==> y == 1 ==> x == y");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {0, 7}));  // antecedent false
  EXPECT_TRUE(evalBool(*E, {1, 1}));
  EXPECT_TRUE(evalBool(*E, {1, 2})); // inner antecedent false
}

TEST(Parser, UnaryMinusAndParens) {
  ExprRef E = parseOk(userLoc(), "-(x - y) == y - x");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {7, 3}));
}

TEST(Parser, Builtins) {
  ExprRef E = parseOk(userLoc(), "min(x, y) >= 2 && max(x, y) <= 8 && abs(x - y) <= 3");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {4, 6}));
  EXPECT_FALSE(evalBool(*E, {1, 6}));
}

TEST(Parser, IfThenElseInteger) {
  ExprRef E = parseOk(userLoc(), "(if x < 200 then 200 - x else x - 200) <= 10");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {195, 0}));
  EXPECT_TRUE(evalBool(*E, {210, 0}));
  EXPECT_FALSE(evalBool(*E, {150, 0}));
}

TEST(Parser, IfThenElseBooleanDesugars) {
  ExprRef E = parseOk(userLoc(), "if x < 10 then y < 5 else y > 5");
  ASSERT_TRUE(E);
  EXPECT_TRUE(evalBool(*E, {1, 2}));
  EXPECT_FALSE(evalBool(*E, {1, 7}));
  EXPECT_TRUE(evalBool(*E, {20, 7}));
}

TEST(Parser, RejectsSortErrors) {
  auto R = parseQueryExpr(userLoc(), "x + (y <= 2) <= 3");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().code(), ErrorCode::UnsupportedQuery);
  EXPECT_FALSE(parseQueryExpr(userLoc(), "x").ok()); // int, not bool
  EXPECT_FALSE(parseQueryExpr(userLoc(), "!(x + 1)").ok());
}

TEST(Parser, RejectsUnknownIdentifier) {
  auto R = parseQueryExpr(userLoc(), "z <= 3");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("unknown identifier 'z'"),
            std::string::npos);
}

TEST(Parser, RejectsTrailingInput) {
  EXPECT_FALSE(parseQueryExpr(userLoc(), "x <= 3 x").ok());
}

TEST(ParserModule, FullModuleWithDefs) {
  auto M = parseModule(R"(
    secret UserLoc { x: int[0, 400], y: int[0, 400] }
    def manhattan(ox: int, oy: int): int = abs(x - ox) + abs(y - oy)
    def nearby(ox: int, oy: int): bool = manhattan(ox, oy) <= 100
    query nearby200 = nearby(200, 200)
    query nearby400 = nearby(400, 200)
  )");
  ASSERT_TRUE(M.ok()) << M.error().str();
  EXPECT_EQ(M->schema().name(), "UserLoc");
  EXPECT_EQ(M->queries().size(), 2u);
  const QueryDef *Q = M->findQuery("nearby200");
  ASSERT_NE(Q, nullptr);
  EXPECT_TRUE(evalBool(*Q->Body, {250, 250}));
  EXPECT_FALSE(evalBool(*Q->Body, {0, 0}));
  EXPECT_EQ(M->findQuery("nope"), nullptr);
}

TEST(ParserModule, NestedDefCallsInlineTransitively) {
  auto M = parseModule(R"(
    secret S { a: int[0, 100] }
    def twice(v: int): int = 2 * v
    def quad(v: int): int = twice(twice(v))
    query big = quad(a) >= 40
  )");
  ASSERT_TRUE(M.ok()) << M.error().str();
  EXPECT_TRUE(evalBool(*M->queries()[0].Body, {10}));
  EXPECT_FALSE(evalBool(*M->queries()[0].Body, {9}));
}

TEST(ParserModule, RejectsRecursionPerPaper) {
  // §5.1: "recursive definitions of queries are rejected by ANOSY".
  auto M = parseModule(R"(
    secret S { a: int[0, 100] }
    def loop(v: int): int = loop(v)
    query q = loop(a) == 0
  )");
  ASSERT_FALSE(M.ok());
  EXPECT_EQ(M.error().code(), ErrorCode::UnsupportedQuery);
  EXPECT_NE(M.error().message().find("recursive"), std::string::npos);
}

TEST(ParserModule, RejectsMutualRecursion) {
  // Calls may only reference *earlier* defs, which already rules out
  // mutual recursion at the use site.
  auto M = parseModule(R"(
    secret S { a: int[0, 100] }
    def even(v: int): bool = odd(v - 1)
    def odd(v: int): bool = even(v - 1)
    query q = even(a)
  )");
  ASSERT_FALSE(M.ok());
}

TEST(ParserModule, RejectsCallArityMismatch) {
  auto M = parseModule(R"(
    secret S { a: int[0, 100] }
    def f(v: int): int = v + 1
    query q = f(a, a) == 0
  )");
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.error().message().find("arguments"), std::string::npos);
}

TEST(ParserModule, RejectsCallSortMismatch) {
  auto M = parseModule(R"(
    secret S { a: int[0, 100] }
    def f(v: bool): bool = v
    query q = f(a)
  )");
  ASSERT_FALSE(M.ok());
}

TEST(ParserModule, RejectsDuplicateNames) {
  EXPECT_FALSE(parseModule(R"(
    secret S { a: int[0, 10], a: int[0, 10] }
    query q = a <= 3
  )").ok());
  EXPECT_FALSE(parseModule(R"(
    secret S { a: int[0, 10] }
    query q = a <= 3
    query q = a <= 4
  )").ok());
}

TEST(ParserModule, RejectsEmptyFieldBounds) {
  auto M = parseModule(R"(
    secret S { a: int[5, 2] }
    query q = a <= 3
  )");
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.error().message().find("empty bounds"), std::string::npos);
}

TEST(ParserModule, NegativeBoundsParse) {
  auto M = parseModule(R"(
    secret S { lon: int[-100, -50] }
    query west = lon <= -75
  )");
  ASSERT_TRUE(M.ok()) << M.error().str();
  EXPECT_EQ(M->schema().field(0).Lo, -100);
  EXPECT_EQ(M->schema().field(0).Hi, -50);
}

TEST(ParserModule, RequiresAtLeastOneQuery) {
  EXPECT_FALSE(parseModule("secret S { a: int[0, 1] }").ok());
}

TEST(ParserModule, BoolParametersWork) {
  auto M = parseModule(R"(
    secret S { a: int[0, 100] }
    def guard(c: bool, v: int): bool = c && v >= 10
    query q = guard(a <= 50, a)
  )");
  ASSERT_TRUE(M.ok()) << M.error().str();
  EXPECT_TRUE(evalBool(*M->queries()[0].Body, {30}));
  EXPECT_FALSE(evalBool(*M->queries()[0].Body, {60}));
  EXPECT_FALSE(evalBool(*M->queries()[0].Body, {5}));
}
