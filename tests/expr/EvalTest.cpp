//===- tests/expr/EvalTest.cpp - Concrete evaluation unit tests -----------===//

#include "expr/Eval.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

/// The paper's nearby query: abs(x - ox) + abs(y - oy) <= 100.
ExprRef nearby(int64_t OX, int64_t OY) {
  return le(add(absOf(sub(fieldRef(0), intConst(OX))),
                absOf(sub(fieldRef(1), intConst(OY)))),
            intConst(100));
}

} // namespace

TEST(Eval, ArithmeticNodes) {
  Point P{7, -3};
  EXPECT_EQ(evalInt(*add(fieldRef(0), fieldRef(1)), P), 4);
  EXPECT_EQ(evalInt(*sub(fieldRef(0), fieldRef(1)), P), 10);
  EXPECT_EQ(evalInt(*mul(fieldRef(0), fieldRef(1)), P), -21);
  EXPECT_EQ(evalInt(*neg(fieldRef(1)), P), 3);
  EXPECT_EQ(evalInt(*absOf(fieldRef(1)), P), 3);
  EXPECT_EQ(evalInt(*minOf(fieldRef(0), fieldRef(1)), P), -3);
  EXPECT_EQ(evalInt(*maxOf(fieldRef(0), fieldRef(1)), P), 7);
}

TEST(Eval, IteSelectsArm) {
  ExprRef E = intIte(le(fieldRef(0), intConst(0)), intConst(-1), intConst(1));
  EXPECT_EQ(evalInt(*E, {0}), -1);
  EXPECT_EQ(evalInt(*E, {1}), 1);
}

TEST(Eval, BooleanConnectives) {
  ExprRef A = le(fieldRef(0), intConst(5));
  ExprRef B = ge(fieldRef(0), intConst(3));
  ExprRef AndE = andOf(A, B);
  ExprRef OrE = orOf(A, B);
  ExprRef NotA = notOf(A);
  ExprRef Impl = implies(A, B);
  EXPECT_TRUE(evalBool(*AndE, {4}));
  EXPECT_FALSE(evalBool(*AndE, {6}));
  EXPECT_TRUE(evalBool(*OrE, {6}));
  EXPECT_FALSE(evalBool(*NotA, {4}));
  EXPECT_TRUE(evalBool(*NotA, {6}));
  EXPECT_FALSE(evalBool(*Impl, {2})); // A true, B false
  EXPECT_TRUE(evalBool(*Impl, {6}));  // A false
}

TEST(Eval, AllComparisons) {
  ExprRef X = fieldRef(0);
  EXPECT_TRUE(evalBool(*eq(X, intConst(4)), {4}));
  EXPECT_TRUE(evalBool(*ne(X, intConst(4)), {5}));
  EXPECT_TRUE(evalBool(*lt(X, intConst(4)), {3}));
  EXPECT_FALSE(evalBool(*lt(X, intConst(4)), {4}));
  EXPECT_TRUE(evalBool(*le(X, intConst(4)), {4}));
  EXPECT_TRUE(evalBool(*gt(X, intConst(4)), {5}));
  EXPECT_TRUE(evalBool(*ge(X, intConst(4)), {4}));
}

TEST(Eval, NearbyMatchesPaperSemantics) {
  // §2.1: nearby checks Manhattan distance <= 100.
  ExprRef Q = nearby(200, 200);
  EXPECT_TRUE(evalBool(*Q, {200, 200}));
  EXPECT_TRUE(evalBool(*Q, {300, 200}));  // distance exactly 100
  EXPECT_TRUE(evalBool(*Q, {250, 250}));  // 50 + 50
  EXPECT_FALSE(evalBool(*Q, {301, 200})); // 101
  EXPECT_FALSE(evalBool(*Q, {0, 0}));
}

TEST(Eval, PaperSectionThreeInference) {
  // §2.1: if nearby(200,200) and nearby(400,200) both hold, the secret is
  // exactly (300, 200).
  ExprRef Both = andOf(nearby(200, 200), nearby(400, 200));
  EXPECT_TRUE(evalBool(*Both, {300, 200}));
  int Count = 0;
  for (int64_t X = 0; X <= 400; ++X)
    for (int64_t Y = 0; Y <= 400; ++Y)
      if (evalBool(*Both, {X, Y}))
        ++Count;
  EXPECT_EQ(Count, 1);
}
