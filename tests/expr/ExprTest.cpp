//===- tests/expr/ExprTest.cpp - AST construction unit tests --------------===//

#include "expr/Expr.h"

#include <gtest/gtest.h>

using namespace anosy;

TEST(Expr, ConstantsCarryValues) {
  EXPECT_EQ(intConst(7)->intValue(), 7);
  EXPECT_TRUE(boolConst(true)->boolValue());
  EXPECT_FALSE(boolConst(false)->boolValue());
  EXPECT_EQ(fieldRef(1)->fieldIndex(), 1u);
}

TEST(Expr, Sorts) {
  EXPECT_TRUE(intConst(1)->isIntSorted());
  EXPECT_TRUE(fieldRef(0)->isIntSorted());
  EXPECT_TRUE(boolConst(true)->isBoolSorted());
  EXPECT_TRUE(le(fieldRef(0), intConst(3))->isBoolSorted());
  EXPECT_TRUE(add(fieldRef(0), intConst(3))->isIntSorted());
}

TEST(Expr, ConstantFolding) {
  EXPECT_EQ(add(intConst(2), intConst(3))->intValue(), 5);
  EXPECT_EQ(sub(intConst(2), intConst(3))->intValue(), -1);
  EXPECT_EQ(mul(intConst(4), intConst(3))->intValue(), 12);
  EXPECT_EQ(absOf(intConst(-9))->intValue(), 9);
  EXPECT_EQ(minOf(intConst(2), intConst(5))->intValue(), 2);
  EXPECT_EQ(maxOf(intConst(2), intConst(5))->intValue(), 5);
  EXPECT_EQ(neg(intConst(4))->intValue(), -4);
}

TEST(Expr, IdentitySimplifications) {
  ExprRef X = fieldRef(0);
  EXPECT_EQ(add(X, intConst(0)).get(), X.get());
  EXPECT_EQ(add(intConst(0), X).get(), X.get());
  EXPECT_EQ(sub(X, intConst(0)).get(), X.get());
  EXPECT_EQ(mul(X, intConst(1)).get(), X.get());
  EXPECT_EQ(mul(intConst(1), X).get(), X.get());
  EXPECT_EQ(mul(X, intConst(0))->intValue(), 0);
  EXPECT_EQ(neg(neg(X)).get(), X.get());
  ExprRef AbsX = absOf(X);
  EXPECT_EQ(absOf(AbsX).get(), AbsX.get());
}

TEST(Expr, BooleanShortCircuitFolding) {
  ExprRef P = le(fieldRef(0), intConst(3));
  EXPECT_EQ(andOf(boolConst(true), P).get(), P.get());
  EXPECT_FALSE(andOf(boolConst(false), P)->boolValue());
  EXPECT_TRUE(orOf(boolConst(true), P)->boolValue());
  EXPECT_EQ(orOf(boolConst(false), P).get(), P.get());
  EXPECT_EQ(notOf(notOf(P)).get(), P.get());
}

TEST(Expr, ComparisonFolding) {
  EXPECT_TRUE(le(intConst(1), intConst(2))->boolValue());
  EXPECT_FALSE(gt(intConst(1), intConst(2))->boolValue());
  EXPECT_TRUE(eq(intConst(3), intConst(3))->boolValue());
  EXPECT_TRUE(ne(intConst(3), intConst(4))->boolValue());
  EXPECT_FALSE(lt(intConst(3), intConst(3))->boolValue());
  EXPECT_TRUE(ge(intConst(3), intConst(3))->boolValue());
}

TEST(Expr, IteFoldsOnConstantCondition) {
  ExprRef A = fieldRef(0), B = fieldRef(1);
  EXPECT_EQ(intIte(boolConst(true), A, B).get(), A.get());
  EXPECT_EQ(intIte(boolConst(false), A, B).get(), B.get());
}

TEST(Expr, AndAllOrAll) {
  EXPECT_TRUE(andAll({})->boolValue());
  EXPECT_FALSE(orAll({})->boolValue());
  ExprRef P = le(fieldRef(0), intConst(3));
  ExprRef Q = ge(fieldRef(0), intConst(1));
  ExprRef Conj = andAll({P, Q});
  EXPECT_EQ(Conj->kind(), ExprKind::And);
}

TEST(Expr, TreeSize) {
  // abs(x - 200) + abs(y - 200) <= 100
  ExprRef E = le(add(absOf(sub(fieldRef(0), intConst(200))),
                     absOf(sub(fieldRef(1), intConst(200)))),
                 intConst(100));
  EXPECT_EQ(E->treeSize(), 11u);
}

TEST(Expr, PrinterRoundTripSpelling) {
  Schema S("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
  ExprRef E = le(add(absOf(sub(fieldRef(0), intConst(200))),
                     absOf(sub(fieldRef(1), intConst(200)))),
                 intConst(100));
  EXPECT_EQ(E->str(S), "(abs(x - 200) + abs(y - 200)) <= 100");
  EXPECT_EQ(E->str(), "(abs($0 - 200) + abs($1 - 200)) <= 100");
}

TEST(Expr, StructuralEqualityAndHash) {
  ExprRef A = le(add(fieldRef(0), intConst(1)), intConst(5));
  ExprRef B = le(add(fieldRef(0), intConst(1)), intConst(5));
  ExprRef C = lt(add(fieldRef(0), intConst(1)), intConst(5));
  EXPECT_TRUE(Expr::structurallyEqual(*A, *B));
  EXPECT_FALSE(Expr::structurallyEqual(*A, *C));
  EXPECT_EQ(Expr::structuralHash(*A), Expr::structuralHash(*B));
}

TEST(Expr, CmpOpHelpers) {
  EXPECT_STREQ(cmpOpSpelling(CmpOp::LE), "<=");
  EXPECT_EQ(cmpOpNegation(CmpOp::LE), CmpOp::GT);
  EXPECT_EQ(cmpOpNegation(CmpOp::EQ), CmpOp::NE);
  EXPECT_EQ(cmpOpNegation(cmpOpNegation(CmpOp::LT)), CmpOp::LT);
}
