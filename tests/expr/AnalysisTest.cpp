//===- tests/expr/AnalysisTest.cpp - Fragment analysis unit tests ---------===//

#include "expr/Analysis.h"

#include "expr/Parser.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {

Schema twoField() { return Schema("S", {{"a", 0, 100}, {"b", 0, 100}}); }

ExprRef q(const std::string &Src) {
  auto R = parseQueryExpr(twoField(), Src);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error().str());
  return R.value();
}

} // namespace

TEST(Analysis, FreeFields) {
  EXPECT_EQ(analyzeQuery(*q("a <= 3")).FreeFields,
            (std::set<unsigned>{0}));
  EXPECT_EQ(analyzeQuery(*q("a + b <= 3")).FreeFields,
            (std::set<unsigned>{0, 1}));
  EXPECT_TRUE(analyzeQuery(*boolConst(true)).FreeFields.empty());
}

TEST(Analysis, LinearityAcceptsConstantMultiples) {
  EXPECT_TRUE(analyzeQuery(*q("2 * a + 3 * b <= 7")).Linear);
  EXPECT_TRUE(analyzeQuery(*q("a * 5 <= 7")).Linear);
}

TEST(Analysis, LinearityRejectsProductsOfFields) {
  EXPECT_FALSE(analyzeQuery(*q("a * b <= 7")).Linear);
  EXPECT_FALSE(analyzeQuery(*q("(a + 1) * (b + 1) <= 7")).Linear);
  EXPECT_FALSE(analyzeQuery(*q("a * a <= 7")).Linear);
}

TEST(Analysis, RelationalDetection) {
  // B2 Ship-style coupling of two fields in a single atom.
  EXPECT_TRUE(analyzeQuery(*q("a + b <= 7")).Relational);
  EXPECT_TRUE(analyzeQuery(*q("abs(a - b) <= 7")).Relational);
  // Separable conjunctions are not relational.
  EXPECT_FALSE(analyzeQuery(*q("a <= 7 && b <= 9")).Relational);
}

TEST(Analysis, AtomCount) {
  EXPECT_EQ(analyzeQuery(*q("a <= 7 && b <= 9 || a == b")).NumAtoms, 3u);
}

TEST(Analysis, AdmitAcceptsLinearQueries) {
  EXPECT_TRUE(admitQuery(*q("2 * a - b <= 7"), 2).ok());
  EXPECT_TRUE(admitQuery(*q("abs(a - 50) + abs(b - 50) <= 30"), 2).ok());
}

TEST(Analysis, AdmitRejectsNonlinear) {
  auto R = admitQuery(*q("a * b <= 7"), 2);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().code(), ErrorCode::UnsupportedQuery);
  EXPECT_NE(R.error().message().find("linear"), std::string::npos);
}

TEST(Analysis, AdmitRejectsIntegerSortedTop) {
  auto R = admitQuery(*add(fieldRef(0), intConst(1)), 2);
  ASSERT_FALSE(R.ok());
}

TEST(Analysis, AdmitRejectsOutOfRangeFields) {
  auto R = admitQuery(*le(fieldRef(5), intConst(1)), 2);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().message().find("$5"), std::string::npos);
}
