//===- tests/expr/SchemaTest.cpp - Schema unit tests -----------------------===//

#include "expr/Schema.h"

#include <gtest/gtest.h>

using namespace anosy;

namespace {
Schema userLoc() {
  return Schema("UserLoc", {{"x", 0, 400}, {"y", 0, 400}});
}
} // namespace

TEST(Schema, Arity) { EXPECT_EQ(userLoc().arity(), 2u); }

TEST(Schema, FieldIndex) {
  Schema S = userLoc();
  EXPECT_EQ(S.fieldIndex("x"), 0);
  EXPECT_EQ(S.fieldIndex("y"), 1);
  EXPECT_EQ(S.fieldIndex("z"), -1);
}

TEST(Schema, ContainsChecksBoundsAndArity) {
  Schema S = userLoc();
  EXPECT_TRUE(S.contains({0, 0}));
  EXPECT_TRUE(S.contains({400, 400}));
  EXPECT_FALSE(S.contains({401, 0}));
  EXPECT_FALSE(S.contains({-1, 5}));
  EXPECT_FALSE(S.contains({1}));
  EXPECT_FALSE(S.contains({1, 2, 3}));
}

TEST(Schema, TotalSize) {
  EXPECT_EQ(userLoc().totalSize().toInt64(), 401 * 401);
  // B1's domain: 365 * 37 = 13505 (the paper's Table 1 total).
  Schema B1("Birthday", {{"bday", 0, 364}, {"byear", 1956, 1992}});
  EXPECT_EQ(B1.totalSize().toInt64(), 13505);
}

TEST(Schema, NegativeBounds) {
  Schema S("T", {{"lon", -74100000, -74000000}});
  EXPECT_EQ(S.totalSize().toInt64(), 100001);
  EXPECT_TRUE(S.contains({-74050000}));
}

TEST(Schema, Str) {
  EXPECT_EQ(userLoc().str(),
            "UserLoc { x: int[0, 400], y: int[0, 400] }");
}
