# Empty dependencies file for anosy_cli.
# This may be replaced when dependencies are built.
