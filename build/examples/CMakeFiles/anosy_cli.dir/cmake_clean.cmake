file(REMOVE_RECURSE
  "CMakeFiles/anosy_cli.dir/anosy_cli.cpp.o"
  "CMakeFiles/anosy_cli.dir/anosy_cli.cpp.o.d"
  "anosy_cli"
  "anosy_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
