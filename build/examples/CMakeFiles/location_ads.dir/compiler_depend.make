# Empty compiler generated dependencies file for location_ads.
# This may be replaced when dependencies are built.
