file(REMOVE_RECURSE
  "CMakeFiles/location_ads.dir/location_ads.cpp.o"
  "CMakeFiles/location_ads.dir/location_ads.cpp.o.d"
  "location_ads"
  "location_ads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_ads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
