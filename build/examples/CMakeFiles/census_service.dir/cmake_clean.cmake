file(REMOVE_RECURSE
  "CMakeFiles/census_service.dir/census_service.cpp.o"
  "CMakeFiles/census_service.dir/census_service.cpp.o.d"
  "census_service"
  "census_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
