# Empty compiler generated dependencies file for census_service.
# This may be replaced when dependencies are built.
