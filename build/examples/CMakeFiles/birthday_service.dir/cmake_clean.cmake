file(REMOVE_RECURSE
  "CMakeFiles/birthday_service.dir/birthday_service.cpp.o"
  "CMakeFiles/birthday_service.dir/birthday_service.cpp.o.d"
  "birthday_service"
  "birthday_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birthday_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
