# Empty compiler generated dependencies file for birthday_service.
# This may be replaced when dependencies are built.
