file(REMOVE_RECURSE
  "CMakeFiles/solver_test.dir/solver/DecideTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/DecideTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/ModelCounterTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/ModelCounterTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/OptimizeTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/OptimizeTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/PredicateTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/PredicateTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/RangeEvalTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/RangeEvalTest.cpp.o.d"
  "CMakeFiles/solver_test.dir/solver/SplitHintsTest.cpp.o"
  "CMakeFiles/solver_test.dir/solver/SplitHintsTest.cpp.o.d"
  "solver_test"
  "solver_test.pdb"
  "solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
