file(REMOVE_RECURSE
  "CMakeFiles/benchlib_test.dir/benchlib/AdvertisingTest.cpp.o"
  "CMakeFiles/benchlib_test.dir/benchlib/AdvertisingTest.cpp.o.d"
  "CMakeFiles/benchlib_test.dir/benchlib/ProblemsTest.cpp.o"
  "CMakeFiles/benchlib_test.dir/benchlib/ProblemsTest.cpp.o.d"
  "benchlib_test"
  "benchlib_test.pdb"
  "benchlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
