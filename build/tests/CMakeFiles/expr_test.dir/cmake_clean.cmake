file(REMOVE_RECURSE
  "CMakeFiles/expr_test.dir/expr/AnalysisTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/AnalysisTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/EvalTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/EvalTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/ExprTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/ExprTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/LexerTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/LexerTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/ParserTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/ParserTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/RoundTripTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/RoundTripTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/SchemaTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/SchemaTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/SimplifyTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/SimplifyTest.cpp.o.d"
  "CMakeFiles/expr_test.dir/expr/SmtLibTest.cpp.o"
  "CMakeFiles/expr_test.dir/expr/SmtLibTest.cpp.o.d"
  "expr_test"
  "expr_test.pdb"
  "expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
