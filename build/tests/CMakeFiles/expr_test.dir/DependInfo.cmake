
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/expr/AnalysisTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/AnalysisTest.cpp.o.d"
  "/root/repo/tests/expr/EvalTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/EvalTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/EvalTest.cpp.o.d"
  "/root/repo/tests/expr/ExprTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/ExprTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/ExprTest.cpp.o.d"
  "/root/repo/tests/expr/LexerTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/LexerTest.cpp.o.d"
  "/root/repo/tests/expr/ParserTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/ParserTest.cpp.o.d"
  "/root/repo/tests/expr/RoundTripTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/RoundTripTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/RoundTripTest.cpp.o.d"
  "/root/repo/tests/expr/SchemaTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/SchemaTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/SchemaTest.cpp.o.d"
  "/root/repo/tests/expr/SimplifyTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/SimplifyTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/SimplifyTest.cpp.o.d"
  "/root/repo/tests/expr/SmtLibTest.cpp" "tests/CMakeFiles/expr_test.dir/expr/SmtLibTest.cpp.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr/SmtLibTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/anosy_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anosy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/anosy_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/anosy_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/anosy_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/anosy_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/anosy_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/anosy_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anosy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
