file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/AnosySessionTest.cpp.o"
  "CMakeFiles/core_test.dir/core/AnosySessionTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/AnosyTTest.cpp.o"
  "CMakeFiles/core_test.dir/core/AnosyTTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ArtifactIOTest.cpp.o"
  "CMakeFiles/core_test.dir/core/ArtifactIOTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ClassifierDowngradeTest.cpp.o"
  "CMakeFiles/core_test.dir/core/ClassifierDowngradeTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/KnowledgeTrackerTest.cpp.o"
  "CMakeFiles/core_test.dir/core/KnowledgeTrackerTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/OverMonitorTest.cpp.o"
  "CMakeFiles/core_test.dir/core/OverMonitorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/PolicyTest.cpp.o"
  "CMakeFiles/core_test.dir/core/PolicyTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/QifTest.cpp.o"
  "CMakeFiles/core_test.dir/core/QifTest.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
