# Empty dependencies file for ifc_test.
# This may be replaced when dependencies are built.
