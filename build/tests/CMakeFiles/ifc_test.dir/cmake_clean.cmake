file(REMOVE_RECURSE
  "CMakeFiles/ifc_test.dir/ifc/LabelTest.cpp.o"
  "CMakeFiles/ifc_test.dir/ifc/LabelTest.cpp.o.d"
  "CMakeFiles/ifc_test.dir/ifc/ReaderSetAnosyTTest.cpp.o"
  "CMakeFiles/ifc_test.dir/ifc/ReaderSetAnosyTTest.cpp.o.d"
  "CMakeFiles/ifc_test.dir/ifc/SecureContextTest.cpp.o"
  "CMakeFiles/ifc_test.dir/ifc/SecureContextTest.cpp.o.d"
  "ifc_test"
  "ifc_test.pdb"
  "ifc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
