file(REMOVE_RECURSE
  "CMakeFiles/domains_test.dir/domains/ArityLawsTest.cpp.o"
  "CMakeFiles/domains_test.dir/domains/ArityLawsTest.cpp.o.d"
  "CMakeFiles/domains_test.dir/domains/BoxAlgebraTest.cpp.o"
  "CMakeFiles/domains_test.dir/domains/BoxAlgebraTest.cpp.o.d"
  "CMakeFiles/domains_test.dir/domains/BoxTest.cpp.o"
  "CMakeFiles/domains_test.dir/domains/BoxTest.cpp.o.d"
  "CMakeFiles/domains_test.dir/domains/DomainLawsTest.cpp.o"
  "CMakeFiles/domains_test.dir/domains/DomainLawsTest.cpp.o.d"
  "CMakeFiles/domains_test.dir/domains/IntervalTest.cpp.o"
  "CMakeFiles/domains_test.dir/domains/IntervalTest.cpp.o.d"
  "CMakeFiles/domains_test.dir/domains/PowerBoxTest.cpp.o"
  "CMakeFiles/domains_test.dir/domains/PowerBoxTest.cpp.o.d"
  "domains_test"
  "domains_test.pdb"
  "domains_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domains_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
