file(REMOVE_RECURSE
  "CMakeFiles/synth_test.dir/synth/ClassifierSynthTest.cpp.o"
  "CMakeFiles/synth_test.dir/synth/ClassifierSynthTest.cpp.o.d"
  "CMakeFiles/synth_test.dir/synth/DeterminismTest.cpp.o"
  "CMakeFiles/synth_test.dir/synth/DeterminismTest.cpp.o.d"
  "CMakeFiles/synth_test.dir/synth/SketchTest.cpp.o"
  "CMakeFiles/synth_test.dir/synth/SketchTest.cpp.o.d"
  "CMakeFiles/synth_test.dir/synth/SynthesizerTest.cpp.o"
  "CMakeFiles/synth_test.dir/synth/SynthesizerTest.cpp.o.d"
  "synth_test"
  "synth_test.pdb"
  "synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
