# Empty compiler generated dependencies file for fig6_sequential_queries.
# This may be replaced when dependencies are built.
