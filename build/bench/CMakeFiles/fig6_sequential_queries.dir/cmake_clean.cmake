file(REMOVE_RECURSE
  "CMakeFiles/fig6_sequential_queries.dir/fig6_sequential_queries.cpp.o"
  "CMakeFiles/fig6_sequential_queries.dir/fig6_sequential_queries.cpp.o.d"
  "fig6_sequential_queries"
  "fig6_sequential_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sequential_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
