file(REMOVE_RECURSE
  "CMakeFiles/fig1_nearby_posteriors.dir/fig1_nearby_posteriors.cpp.o"
  "CMakeFiles/fig1_nearby_posteriors.dir/fig1_nearby_posteriors.cpp.o.d"
  "fig1_nearby_posteriors"
  "fig1_nearby_posteriors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_nearby_posteriors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
