# Empty dependencies file for fig1_nearby_posteriors.
# This may be replaced when dependencies are built.
