
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5b_powerset_synthesis.cpp" "bench/CMakeFiles/fig5b_powerset_synthesis.dir/fig5b_powerset_synthesis.cpp.o" "gcc" "bench/CMakeFiles/fig5b_powerset_synthesis.dir/fig5b_powerset_synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/anosy_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anosy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/anosy_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/anosy_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/anosy_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/anosy_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/anosy_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/anosy_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anosy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
