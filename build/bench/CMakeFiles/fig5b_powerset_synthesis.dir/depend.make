# Empty dependencies file for fig5b_powerset_synthesis.
# This may be replaced when dependencies are built.
