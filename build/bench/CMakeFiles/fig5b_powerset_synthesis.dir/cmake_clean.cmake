file(REMOVE_RECURSE
  "CMakeFiles/fig5b_powerset_synthesis.dir/fig5b_powerset_synthesis.cpp.o"
  "CMakeFiles/fig5b_powerset_synthesis.dir/fig5b_powerset_synthesis.cpp.o.d"
  "fig5b_powerset_synthesis"
  "fig5b_powerset_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_powerset_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
