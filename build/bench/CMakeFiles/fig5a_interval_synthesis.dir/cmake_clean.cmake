file(REMOVE_RECURSE
  "CMakeFiles/fig5a_interval_synthesis.dir/fig5a_interval_synthesis.cpp.o"
  "CMakeFiles/fig5a_interval_synthesis.dir/fig5a_interval_synthesis.cpp.o.d"
  "fig5a_interval_synthesis"
  "fig5a_interval_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_interval_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
