# Empty dependencies file for fig5a_interval_synthesis.
# This may be replaced when dependencies are built.
