# Empty dependencies file for domain_ops.
# This may be replaced when dependencies are built.
