file(REMOVE_RECURSE
  "CMakeFiles/domain_ops.dir/domain_ops.cpp.o"
  "CMakeFiles/domain_ops.dir/domain_ops.cpp.o.d"
  "domain_ops"
  "domain_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
