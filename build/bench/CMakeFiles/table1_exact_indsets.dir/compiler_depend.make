# Empty compiler generated dependencies file for table1_exact_indsets.
# This may be replaced when dependencies are built.
