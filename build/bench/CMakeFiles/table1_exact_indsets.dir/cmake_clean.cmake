file(REMOVE_RECURSE
  "CMakeFiles/table1_exact_indsets.dir/table1_exact_indsets.cpp.o"
  "CMakeFiles/table1_exact_indsets.dir/table1_exact_indsets.cpp.o.d"
  "table1_exact_indsets"
  "table1_exact_indsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_exact_indsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
