# Empty dependencies file for prob_comparison.
# This may be replaced when dependencies are built.
