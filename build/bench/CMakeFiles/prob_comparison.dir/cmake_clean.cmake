file(REMOVE_RECURSE
  "CMakeFiles/prob_comparison.dir/prob_comparison.cpp.o"
  "CMakeFiles/prob_comparison.dir/prob_comparison.cpp.o.d"
  "prob_comparison"
  "prob_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prob_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
