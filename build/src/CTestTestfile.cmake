# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("expr")
subdirs("domains")
subdirs("solver")
subdirs("synth")
subdirs("verify")
subdirs("ifc")
subdirs("baselines")
subdirs("core")
subdirs("benchlib")
