file(REMOVE_RECURSE
  "CMakeFiles/anosy_support.dir/Count.cpp.o"
  "CMakeFiles/anosy_support.dir/Count.cpp.o.d"
  "CMakeFiles/anosy_support.dir/Result.cpp.o"
  "CMakeFiles/anosy_support.dir/Result.cpp.o.d"
  "CMakeFiles/anosy_support.dir/Stats.cpp.o"
  "CMakeFiles/anosy_support.dir/Stats.cpp.o.d"
  "CMakeFiles/anosy_support.dir/Table.cpp.o"
  "CMakeFiles/anosy_support.dir/Table.cpp.o.d"
  "libanosy_support.a"
  "libanosy_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
