file(REMOVE_RECURSE
  "libanosy_support.a"
)
