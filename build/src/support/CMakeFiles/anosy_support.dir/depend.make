# Empty dependencies file for anosy_support.
# This may be replaced when dependencies are built.
