# Empty dependencies file for anosy_core.
# This may be replaced when dependencies are built.
