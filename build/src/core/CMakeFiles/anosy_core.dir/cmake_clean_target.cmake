file(REMOVE_RECURSE
  "libanosy_core.a"
)
