file(REMOVE_RECURSE
  "CMakeFiles/anosy_core.dir/ArtifactIO.cpp.o"
  "CMakeFiles/anosy_core.dir/ArtifactIO.cpp.o.d"
  "CMakeFiles/anosy_core.dir/Qif.cpp.o"
  "CMakeFiles/anosy_core.dir/Qif.cpp.o.d"
  "libanosy_core.a"
  "libanosy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
