file(REMOVE_RECURSE
  "CMakeFiles/anosy_domains.dir/Box.cpp.o"
  "CMakeFiles/anosy_domains.dir/Box.cpp.o.d"
  "CMakeFiles/anosy_domains.dir/BoxAlgebra.cpp.o"
  "CMakeFiles/anosy_domains.dir/BoxAlgebra.cpp.o.d"
  "CMakeFiles/anosy_domains.dir/PowerBox.cpp.o"
  "CMakeFiles/anosy_domains.dir/PowerBox.cpp.o.d"
  "libanosy_domains.a"
  "libanosy_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
