# Empty compiler generated dependencies file for anosy_domains.
# This may be replaced when dependencies are built.
