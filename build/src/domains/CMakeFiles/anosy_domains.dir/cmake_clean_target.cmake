file(REMOVE_RECURSE
  "libanosy_domains.a"
)
