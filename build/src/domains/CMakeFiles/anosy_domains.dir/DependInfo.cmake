
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domains/Box.cpp" "src/domains/CMakeFiles/anosy_domains.dir/Box.cpp.o" "gcc" "src/domains/CMakeFiles/anosy_domains.dir/Box.cpp.o.d"
  "/root/repo/src/domains/BoxAlgebra.cpp" "src/domains/CMakeFiles/anosy_domains.dir/BoxAlgebra.cpp.o" "gcc" "src/domains/CMakeFiles/anosy_domains.dir/BoxAlgebra.cpp.o.d"
  "/root/repo/src/domains/PowerBox.cpp" "src/domains/CMakeFiles/anosy_domains.dir/PowerBox.cpp.o" "gcc" "src/domains/CMakeFiles/anosy_domains.dir/PowerBox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/anosy_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anosy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
