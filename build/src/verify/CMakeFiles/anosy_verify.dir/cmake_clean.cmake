file(REMOVE_RECURSE
  "CMakeFiles/anosy_verify.dir/Certificate.cpp.o"
  "CMakeFiles/anosy_verify.dir/Certificate.cpp.o.d"
  "CMakeFiles/anosy_verify.dir/RefinementChecker.cpp.o"
  "CMakeFiles/anosy_verify.dir/RefinementChecker.cpp.o.d"
  "libanosy_verify.a"
  "libanosy_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
