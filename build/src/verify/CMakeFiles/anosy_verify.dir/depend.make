# Empty dependencies file for anosy_verify.
# This may be replaced when dependencies are built.
