file(REMOVE_RECURSE
  "libanosy_verify.a"
)
