file(REMOVE_RECURSE
  "libanosy_benchlib.a"
)
