file(REMOVE_RECURSE
  "CMakeFiles/anosy_benchlib.dir/Advertising.cpp.o"
  "CMakeFiles/anosy_benchlib.dir/Advertising.cpp.o.d"
  "CMakeFiles/anosy_benchlib.dir/Problems.cpp.o"
  "CMakeFiles/anosy_benchlib.dir/Problems.cpp.o.d"
  "libanosy_benchlib.a"
  "libanosy_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
