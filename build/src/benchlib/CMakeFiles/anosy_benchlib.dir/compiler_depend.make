# Empty compiler generated dependencies file for anosy_benchlib.
# This may be replaced when dependencies are built.
