file(REMOVE_RECURSE
  "CMakeFiles/anosy_expr.dir/Analysis.cpp.o"
  "CMakeFiles/anosy_expr.dir/Analysis.cpp.o.d"
  "CMakeFiles/anosy_expr.dir/Eval.cpp.o"
  "CMakeFiles/anosy_expr.dir/Eval.cpp.o.d"
  "CMakeFiles/anosy_expr.dir/Expr.cpp.o"
  "CMakeFiles/anosy_expr.dir/Expr.cpp.o.d"
  "CMakeFiles/anosy_expr.dir/Lexer.cpp.o"
  "CMakeFiles/anosy_expr.dir/Lexer.cpp.o.d"
  "CMakeFiles/anosy_expr.dir/Parser.cpp.o"
  "CMakeFiles/anosy_expr.dir/Parser.cpp.o.d"
  "CMakeFiles/anosy_expr.dir/Schema.cpp.o"
  "CMakeFiles/anosy_expr.dir/Schema.cpp.o.d"
  "CMakeFiles/anosy_expr.dir/Simplify.cpp.o"
  "CMakeFiles/anosy_expr.dir/Simplify.cpp.o.d"
  "CMakeFiles/anosy_expr.dir/SmtLib.cpp.o"
  "CMakeFiles/anosy_expr.dir/SmtLib.cpp.o.d"
  "libanosy_expr.a"
  "libanosy_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
