file(REMOVE_RECURSE
  "libanosy_expr.a"
)
