# Empty compiler generated dependencies file for anosy_expr.
# This may be replaced when dependencies are built.
