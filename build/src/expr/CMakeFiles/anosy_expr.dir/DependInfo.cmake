
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/Analysis.cpp" "src/expr/CMakeFiles/anosy_expr.dir/Analysis.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/Analysis.cpp.o.d"
  "/root/repo/src/expr/Eval.cpp" "src/expr/CMakeFiles/anosy_expr.dir/Eval.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/Eval.cpp.o.d"
  "/root/repo/src/expr/Expr.cpp" "src/expr/CMakeFiles/anosy_expr.dir/Expr.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/Expr.cpp.o.d"
  "/root/repo/src/expr/Lexer.cpp" "src/expr/CMakeFiles/anosy_expr.dir/Lexer.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/Lexer.cpp.o.d"
  "/root/repo/src/expr/Parser.cpp" "src/expr/CMakeFiles/anosy_expr.dir/Parser.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/Parser.cpp.o.d"
  "/root/repo/src/expr/Schema.cpp" "src/expr/CMakeFiles/anosy_expr.dir/Schema.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/Schema.cpp.o.d"
  "/root/repo/src/expr/Simplify.cpp" "src/expr/CMakeFiles/anosy_expr.dir/Simplify.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/Simplify.cpp.o.d"
  "/root/repo/src/expr/SmtLib.cpp" "src/expr/CMakeFiles/anosy_expr.dir/SmtLib.cpp.o" "gcc" "src/expr/CMakeFiles/anosy_expr.dir/SmtLib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/anosy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
