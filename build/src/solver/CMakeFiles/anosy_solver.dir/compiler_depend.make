# Empty compiler generated dependencies file for anosy_solver.
# This may be replaced when dependencies are built.
