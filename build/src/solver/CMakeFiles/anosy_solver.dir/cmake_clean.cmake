file(REMOVE_RECURSE
  "CMakeFiles/anosy_solver.dir/Decide.cpp.o"
  "CMakeFiles/anosy_solver.dir/Decide.cpp.o.d"
  "CMakeFiles/anosy_solver.dir/ModelCounter.cpp.o"
  "CMakeFiles/anosy_solver.dir/ModelCounter.cpp.o.d"
  "CMakeFiles/anosy_solver.dir/Optimize.cpp.o"
  "CMakeFiles/anosy_solver.dir/Optimize.cpp.o.d"
  "CMakeFiles/anosy_solver.dir/Predicate.cpp.o"
  "CMakeFiles/anosy_solver.dir/Predicate.cpp.o.d"
  "CMakeFiles/anosy_solver.dir/RangeEval.cpp.o"
  "CMakeFiles/anosy_solver.dir/RangeEval.cpp.o.d"
  "CMakeFiles/anosy_solver.dir/SplitHints.cpp.o"
  "CMakeFiles/anosy_solver.dir/SplitHints.cpp.o.d"
  "libanosy_solver.a"
  "libanosy_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
