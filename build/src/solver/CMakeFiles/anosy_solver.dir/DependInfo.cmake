
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/Decide.cpp" "src/solver/CMakeFiles/anosy_solver.dir/Decide.cpp.o" "gcc" "src/solver/CMakeFiles/anosy_solver.dir/Decide.cpp.o.d"
  "/root/repo/src/solver/ModelCounter.cpp" "src/solver/CMakeFiles/anosy_solver.dir/ModelCounter.cpp.o" "gcc" "src/solver/CMakeFiles/anosy_solver.dir/ModelCounter.cpp.o.d"
  "/root/repo/src/solver/Optimize.cpp" "src/solver/CMakeFiles/anosy_solver.dir/Optimize.cpp.o" "gcc" "src/solver/CMakeFiles/anosy_solver.dir/Optimize.cpp.o.d"
  "/root/repo/src/solver/Predicate.cpp" "src/solver/CMakeFiles/anosy_solver.dir/Predicate.cpp.o" "gcc" "src/solver/CMakeFiles/anosy_solver.dir/Predicate.cpp.o.d"
  "/root/repo/src/solver/RangeEval.cpp" "src/solver/CMakeFiles/anosy_solver.dir/RangeEval.cpp.o" "gcc" "src/solver/CMakeFiles/anosy_solver.dir/RangeEval.cpp.o.d"
  "/root/repo/src/solver/SplitHints.cpp" "src/solver/CMakeFiles/anosy_solver.dir/SplitHints.cpp.o" "gcc" "src/solver/CMakeFiles/anosy_solver.dir/SplitHints.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/domains/CMakeFiles/anosy_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/anosy_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anosy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
