file(REMOVE_RECURSE
  "libanosy_solver.a"
)
