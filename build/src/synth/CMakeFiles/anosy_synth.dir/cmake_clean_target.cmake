file(REMOVE_RECURSE
  "libanosy_synth.a"
)
