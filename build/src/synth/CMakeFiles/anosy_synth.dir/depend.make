# Empty dependencies file for anosy_synth.
# This may be replaced when dependencies are built.
