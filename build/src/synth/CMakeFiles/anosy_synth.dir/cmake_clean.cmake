file(REMOVE_RECURSE
  "CMakeFiles/anosy_synth.dir/ClassifierSynth.cpp.o"
  "CMakeFiles/anosy_synth.dir/ClassifierSynth.cpp.o.d"
  "CMakeFiles/anosy_synth.dir/Sketch.cpp.o"
  "CMakeFiles/anosy_synth.dir/Sketch.cpp.o.d"
  "CMakeFiles/anosy_synth.dir/Synthesizer.cpp.o"
  "CMakeFiles/anosy_synth.dir/Synthesizer.cpp.o.d"
  "libanosy_synth.a"
  "libanosy_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
