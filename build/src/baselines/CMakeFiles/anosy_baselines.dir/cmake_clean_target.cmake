file(REMOVE_RECURSE
  "libanosy_baselines.a"
)
