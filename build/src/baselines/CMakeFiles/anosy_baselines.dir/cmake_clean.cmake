file(REMOVE_RECURSE
  "CMakeFiles/anosy_baselines.dir/AbstractInterpreter.cpp.o"
  "CMakeFiles/anosy_baselines.dir/AbstractInterpreter.cpp.o.d"
  "CMakeFiles/anosy_baselines.dir/Exhaustive.cpp.o"
  "CMakeFiles/anosy_baselines.dir/Exhaustive.cpp.o.d"
  "libanosy_baselines.a"
  "libanosy_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anosy_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
