
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/AbstractInterpreter.cpp" "src/baselines/CMakeFiles/anosy_baselines.dir/AbstractInterpreter.cpp.o" "gcc" "src/baselines/CMakeFiles/anosy_baselines.dir/AbstractInterpreter.cpp.o.d"
  "/root/repo/src/baselines/Exhaustive.cpp" "src/baselines/CMakeFiles/anosy_baselines.dir/Exhaustive.cpp.o" "gcc" "src/baselines/CMakeFiles/anosy_baselines.dir/Exhaustive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/anosy_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/anosy_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/anosy_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anosy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
