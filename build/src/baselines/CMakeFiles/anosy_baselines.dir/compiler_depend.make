# Empty compiler generated dependencies file for anosy_baselines.
# This may be replaced when dependencies are built.
