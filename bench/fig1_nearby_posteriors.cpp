//===- bench/fig1_nearby_posteriors.cpp - Fig. 1 and the §3 trace ---------===//
//
// Figure 1 / §3: posteriors of the nearby queries on the 400x400 UserLoc
// space. Prints (a) the exact posterior region sizes after each query
// combination (Fig. 1a's green/blue/red intersections), (b) the paper's
// hand-written under-approximation boxes and their §3 sizes (6837 / 2537 /
// 0), and (c) what this implementation synthesizes for the same trace.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AnosySession.h"
#include "support/Table.h"

using namespace anosy;

int main() {
  const BenchmarkProblem &NB = nearbyProblem();
  const Schema &S = NB.M.schema();
  Box Top = Box::top(S);

  PredicateRef N200 = exprPredicate(NB.M.findQuery("nearby200")->Body);
  PredicateRef N300 = exprPredicate(NB.M.findQuery("nearby300")->Body);
  PredicateRef N400 = exprPredicate(NB.M.findQuery("nearby400")->Body);

  std::printf("Fig. 1a — exact posterior region sizes (True responses):\n\n");
  TextTable T;
  T.setHeader({"region", "exact size"});
  T.addRow({"nearby(200,200)", countSatExact(*N200, Top).str()});
  T.addRow({"nearby(300,200)", countSatExact(*N300, Top).str()});
  T.addRow({"nearby(400,200)", countSatExact(*N400, Top).str()});
  T.addRow({"200 ^ 300", countSatExact(*andPredicate(N200, N300), Top).str()});
  T.addRow({"200 ^ 400", countSatExact(*andPredicate(N200, N400), Top).str()});
  T.addRow({"200 ^ 300 ^ 400",
            countSatExact(*andPredicate(andPredicate(N200, N300), N400), Top)
                .str()});
  std::printf("%s\n", T.render().c_str());
  std::printf("(200 ^ 400 contains exactly one secret: (300,200) — the §2.1 "
              "inference.)\n\n");

  // The §3 trace with the paper's hand-written boxes.
  std::printf("§3 downgrade trace, paper's Z3-Pareto boxes:\n");
  Box PaperInd({{121, 279}, {179, 221}});
  Box Post1 = Top.intersect(PaperInd);
  Box Post2 = Post1.intersect(Box({{221, 379}, {179, 221}}));
  Box Post3 = Post2.intersect(Box({{321, 400}, {179, 221}}));
  std::printf("  post1 = %s  |post1| = %s (paper: 6837)\n",
              Post1.str().c_str(), Post1.volume().str().c_str());
  std::printf("  post2 = %s  |post2| = %s (paper: 2537)\n",
              Post2.str().c_str(), Post2.volume().str().c_str());
  std::printf("  post3 = %s  |post3| = %s (paper: 0 -> policy violation)\n\n",
              Post3.str().c_str(), Post3.volume().str().c_str());

  // The same trace with this implementation's synthesized boxes.
  std::printf("§3 downgrade trace, synthesized by this implementation "
              "(interval domain,\nqpolicy: size > 100):\n");
  auto Session =
      AnosySession<Box>::create(NB.M, minSizePolicy<Box>(100));
  if (!Session) {
    std::fprintf(stderr, "%s\n", Session.error().str().c_str());
    return 1;
  }
  Point Secret{300, 200};
  for (const char *Name : {"nearby200", "nearby300", "nearby400"}) {
    auto R = Session->downgrade(Secret, Name);
    if (!R) {
      std::printf("  %-10s -> %s\n", Name, R.error().str().c_str());
      continue;
    }
    Box K = Session->tracker().knowledgeFor(Secret);
    std::printf("  %-10s -> %-5s  knowledge %s  size %s\n", Name,
                *R ? "true" : "false", K.str().c_str(),
                K.volume().str().c_str());
  }
  std::printf("\nShape check: two downgrades authorized, the third "
              "rejected — matching §3.\n");
  return 0;
}
