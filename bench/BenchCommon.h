//===- bench/BenchCommon.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure harnesses: exact ind. set sizes,
/// the paper's %-difference metric, and repeat-run timing in the paper's
/// median ± semi-interquartile protocol.
///
//===----------------------------------------------------------------------===//

#ifndef ANOSY_BENCH_BENCHCOMMON_H
#define ANOSY_BENCH_BENCHCOMMON_H

#include "benchlib/Problems.h"
#include "solver/ModelCounter.h"
#include "support/ParseNum.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace anosy {

/// Exact ind. set sizes (True/False) of a problem, via model counting.
struct ExactSizes {
  BigCount TrueSize;
  BigCount FalseSize;
};

/// \p NodesOut, when non-null, receives the solver nodes the two counts
/// charged — the numerator of the shared nodes/sec throughput fields.
inline ExactSizes exactIndSetSizes(const BenchmarkProblem &P,
                                   uint64_t *NodesOut = nullptr) {
  Box Top = Box::top(P.M.schema());
  PredicateRef Q = exprPredicate(P.query().Body);
  SolverBudget BT, BF;
  CountResult T = countSat(*Q, Top, BT);
  CountResult F = countSat(*notPredicate(Q), Top, BF);
  if (T.Exhausted || F.Exhausted) {
    std::fprintf(stderr, "exact counting exhausted its budget on %s\n",
                 P.Id.c_str());
    std::exit(1);
  }
  if (NodesOut != nullptr)
    *NodesOut = BT.used() + BF.used();
  return {T.Count, F.Count};
}

/// The paper's "% diff." column: percentage difference between the
/// approximated and the exact ind. set size (lower is better; 0 = exact).
inline std::string percentDiff(const BigCount &Approx,
                               const BigCount &Exact) {
  if (Exact.isZero())
    return Approx.isZero() ? "0" : "inf";
  double D = (Approx.toDouble() - Exact.toDouble()) / Exact.toDouble();
  if (D < 0)
    D = -D;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.0f", D * 100.0);
  return Buf;
}

/// "x / y" cell in the paper's scientific notation.
inline std::string sizePair(const BigCount &T, const BigCount &F) {
  return T.sci() + " / " + F.sci();
}

/// Runs \p Body \p Runs times and reports median ± SIQR seconds. The
/// numeric median lands in \p MedianOut (when non-null) so harnesses can
/// derive throughput fields from the same timing pass they display.
inline std::string timeRepeated(unsigned Runs,
                                const std::function<void()> &Body,
                                double *MedianOut = nullptr) {
  std::vector<double> Samples;
  for (unsigned I = 0; I != Runs; ++I) {
    Stopwatch W;
    Body();
    Samples.push_back(W.seconds());
  }
  if (MedianOut != nullptr) {
    std::vector<double> Sorted = Samples;
    std::sort(Sorted.begin(), Sorted.end());
    *MedianOut = Sorted[Sorted.size() / 2];
  }
  return medianPlusMinus(Samples, 3);
}

/// Runs \p Body \p Runs times and reports the median in seconds.
inline double medianSeconds(unsigned Runs, const std::function<void()> &Body) {
  std::vector<double> Samples;
  for (unsigned I = 0; I != Runs; ++I) {
    Stopwatch W;
    Body();
    Samples.push_back(W.seconds());
  }
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

/// Strict harness-flag value parsing (support/ParseNum.h): a mistyped
/// `--runs 1O` aborts the harness instead of silently benchmarking one
/// run and publishing it as the median of eleven.
inline unsigned parseBenchUnsigned(const char *Flag, const char *Value) {
  auto V = parseUnsigned(Value);
  if (!V) {
    std::fprintf(stderr, "error: invalid value for %s: '%s'\n", Flag, Value);
    std::exit(2);
  }
  return *V;
}

/// Parses a "--runs N" override (the paper uses 11; smaller values make
/// quick local runs cheaper).
inline unsigned parseRuns(int Argc, char **Argv, unsigned Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--runs") == 0)
      return parseBenchUnsigned("--runs", Argv[I + 1]);
  return Default;
}

/// Parses a "--threads N" / "--threads=N" override for the parallel
/// sections; 0 means hardware concurrency.
inline unsigned parseThreads(int Argc, char **Argv, unsigned Default) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc)
      return parseBenchUnsigned("--threads", Argv[I + 1]);
    if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      return parseBenchUnsigned("--threads", Argv[I] + 10);
  }
  return Default;
}

/// The thread counts the parallel reports sweep: a curve, not a single
/// point, so the scaling shape (or the single-core overhead plateau) is
/// visible in the JSON. `--threads N` collapses the sweep to one count.
inline std::vector<unsigned> parseThreadCounts(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc)
      return {parseBenchUnsigned("--threads", Argv[I + 1])};
    if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      return {parseBenchUnsigned("--threads", Argv[I] + 10)};
  }
  return {1, 2, 4, 8};
}

/// One serial-vs-parallel wall-time comparison for the BENCH_parallel
/// JSON reports.
struct ParallelSample {
  std::string Name;
  unsigned Threads = 1;
  double SerialSeconds = 0;
  double ParallelSeconds = 0;
};

/// Writes \p Samples to \p Path as a JSON array with derived speedups.
/// Speedups only materialize with real cores: on a single-core host the
/// parallel engine pays its (small) decomposition overhead for nothing.
inline void writeParallelBenchJson(const std::string &Path,
                                   const std::vector<ParallelSample> &Samples,
                                   unsigned HardwareThreads) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"hardware_threads\": %u,\n  \"samples\": [\n",
               HardwareThreads);
  for (size_t I = 0; I != Samples.size(); ++I) {
    const ParallelSample &S = Samples[I];
    double Speedup =
        S.ParallelSeconds > 0 ? S.SerialSeconds / S.ParallelSeconds : 0;
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"threads\": %u, "
                 "\"serial_s\": %.6f, \"parallel_s\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 S.Name.c_str(), S.Threads, S.SerialSeconds,
                 S.ParallelSeconds, Speedup,
                 I + 1 == Samples.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

/// One throughput measurement in the shared vocabulary every harness
/// emits: solver nodes per second for search-shaped work, predicate
/// evaluations per second for probe-shaped work. Zero means "not
/// measured for this sample" and renders as null, never as a fake 0.
struct ThroughputSample {
  std::string Name;     ///< Benchmark or workload name.
  std::string Variant;  ///< e.g. "tree_walk", "tape", "tape_batch".
  double Seconds = 0;   ///< Median wall seconds for the sample.
  uint64_t Nodes = 0;   ///< Solver nodes charged during the sample.
  uint64_t Evals = 0;   ///< Predicate box-evaluations performed.

  double nodesPerSec() const { return Seconds > 0 ? Nodes / Seconds : 0; }
  double evalsPerSec() const { return Seconds > 0 ? Evals / Seconds : 0; }
};

/// Appends one sample as a JSON object line (comma-separated by the
/// caller). Shared by BENCH_compiled and the fig5a/fig5b/table1
/// throughput sections so the fields stay comparable across files.
inline void fprintThroughputJson(std::FILE *F, const ThroughputSample &S,
                                 bool Last) {
  std::fprintf(F,
               "    {\"name\": \"%s\", \"variant\": \"%s\", "
               "\"seconds\": %.6f, ",
               S.Name.c_str(), S.Variant.c_str(), S.Seconds);
  if (S.Nodes != 0)
    std::fprintf(F, "\"nodes\": %llu, \"nodes_per_sec\": %.0f, ",
                 static_cast<unsigned long long>(S.Nodes), S.nodesPerSec());
  else
    std::fprintf(F, "\"nodes\": null, \"nodes_per_sec\": null, ");
  if (S.Evals != 0)
    std::fprintf(F, "\"evals\": %llu, \"evals_per_sec\": %.0f}%s\n",
                 static_cast<unsigned long long>(S.Evals), S.evalsPerSec(),
                 Last ? "" : ",");
  else
    std::fprintf(F, "\"evals\": null, \"evals_per_sec\": null}%s\n",
                 Last ? "" : ",");
}

/// Writes a whole throughput report: {"samples": [...]}  with an
/// optional free-form preamble of extra top-level fields.
inline void writeThroughputJson(const std::string &Path,
                                const std::vector<ThroughputSample> &Samples,
                                const std::string &ExtraTopLevel = "") {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n");
  if (!ExtraTopLevel.empty())
    std::fprintf(F, "%s", ExtraTopLevel.c_str());
  std::fprintf(F, "  \"samples\": [\n");
  for (size_t I = 0; I != Samples.size(); ++I)
    fprintThroughputJson(F, Samples[I], I + 1 == Samples.size());
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace anosy

#endif // ANOSY_BENCH_BENCHCOMMON_H
