//===- bench/BenchCommon.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure harnesses: exact ind. set sizes,
/// the paper's %-difference metric, and repeat-run timing in the paper's
/// median ± semi-interquartile protocol.
///
//===----------------------------------------------------------------------===//

#ifndef ANOSY_BENCH_BENCHCOMMON_H
#define ANOSY_BENCH_BENCHCOMMON_H

#include "benchlib/Problems.h"
#include "solver/ModelCounter.h"
#include "support/ParseNum.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace anosy {

/// Exact ind. set sizes (True/False) of a problem, via model counting.
struct ExactSizes {
  BigCount TrueSize;
  BigCount FalseSize;
};

inline ExactSizes exactIndSetSizes(const BenchmarkProblem &P) {
  Box Top = Box::top(P.M.schema());
  PredicateRef Q = exprPredicate(P.query().Body);
  return {countSatExact(*Q, Top), countSatExact(*notPredicate(Q), Top)};
}

/// The paper's "% diff." column: percentage difference between the
/// approximated and the exact ind. set size (lower is better; 0 = exact).
inline std::string percentDiff(const BigCount &Approx,
                               const BigCount &Exact) {
  if (Exact.isZero())
    return Approx.isZero() ? "0" : "inf";
  double D = (Approx.toDouble() - Exact.toDouble()) / Exact.toDouble();
  if (D < 0)
    D = -D;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.0f", D * 100.0);
  return Buf;
}

/// "x / y" cell in the paper's scientific notation.
inline std::string sizePair(const BigCount &T, const BigCount &F) {
  return T.sci() + " / " + F.sci();
}

/// Runs \p Body \p Runs times and reports median ± SIQR seconds.
inline std::string timeRepeated(unsigned Runs,
                                const std::function<void()> &Body) {
  std::vector<double> Samples;
  for (unsigned I = 0; I != Runs; ++I) {
    Stopwatch W;
    Body();
    Samples.push_back(W.seconds());
  }
  return medianPlusMinus(Samples, 3);
}

/// Runs \p Body \p Runs times and reports the median in seconds.
inline double medianSeconds(unsigned Runs, const std::function<void()> &Body) {
  std::vector<double> Samples;
  for (unsigned I = 0; I != Runs; ++I) {
    Stopwatch W;
    Body();
    Samples.push_back(W.seconds());
  }
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

/// Strict harness-flag value parsing (support/ParseNum.h): a mistyped
/// `--runs 1O` aborts the harness instead of silently benchmarking one
/// run and publishing it as the median of eleven.
inline unsigned parseBenchUnsigned(const char *Flag, const char *Value) {
  auto V = parseUnsigned(Value);
  if (!V) {
    std::fprintf(stderr, "error: invalid value for %s: '%s'\n", Flag, Value);
    std::exit(2);
  }
  return *V;
}

/// Parses a "--runs N" override (the paper uses 11; smaller values make
/// quick local runs cheaper).
inline unsigned parseRuns(int Argc, char **Argv, unsigned Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--runs") == 0)
      return parseBenchUnsigned("--runs", Argv[I + 1]);
  return Default;
}

/// Parses a "--threads N" / "--threads=N" override for the parallel
/// sections; 0 means hardware concurrency.
inline unsigned parseThreads(int Argc, char **Argv, unsigned Default) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc)
      return parseBenchUnsigned("--threads", Argv[I + 1]);
    if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      return parseBenchUnsigned("--threads", Argv[I] + 10);
  }
  return Default;
}

/// The thread counts the parallel reports sweep: a curve, not a single
/// point, so the scaling shape (or the single-core overhead plateau) is
/// visible in the JSON. `--threads N` collapses the sweep to one count.
inline std::vector<unsigned> parseThreadCounts(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc)
      return {parseBenchUnsigned("--threads", Argv[I + 1])};
    if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      return {parseBenchUnsigned("--threads", Argv[I] + 10)};
  }
  return {1, 2, 4, 8};
}

/// One serial-vs-parallel wall-time comparison for the BENCH_parallel
/// JSON reports.
struct ParallelSample {
  std::string Name;
  unsigned Threads = 1;
  double SerialSeconds = 0;
  double ParallelSeconds = 0;
};

/// Writes \p Samples to \p Path as a JSON array with derived speedups.
/// Speedups only materialize with real cores: on a single-core host the
/// parallel engine pays its (small) decomposition overhead for nothing.
inline void writeParallelBenchJson(const std::string &Path,
                                   const std::vector<ParallelSample> &Samples,
                                   unsigned HardwareThreads) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"hardware_threads\": %u,\n  \"samples\": [\n",
               HardwareThreads);
  for (size_t I = 0; I != Samples.size(); ++I) {
    const ParallelSample &S = Samples[I];
    double Speedup =
        S.ParallelSeconds > 0 ? S.SerialSeconds / S.ParallelSeconds : 0;
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"threads\": %u, "
                 "\"serial_s\": %.6f, \"parallel_s\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 S.Name.c_str(), S.Threads, S.SerialSeconds,
                 S.ParallelSeconds, Speedup,
                 I + 1 == Samples.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace anosy

#endif // ANOSY_BENCH_BENCHCOMMON_H
