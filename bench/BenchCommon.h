//===- bench/BenchCommon.h - Shared harness helpers -------------*- C++ -*-===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure harnesses: exact ind. set sizes,
/// the paper's %-difference metric, and repeat-run timing in the paper's
/// median ± semi-interquartile protocol.
///
//===----------------------------------------------------------------------===//

#ifndef ANOSY_BENCH_BENCHCOMMON_H
#define ANOSY_BENCH_BENCHCOMMON_H

#include "benchlib/Problems.h"
#include "solver/ModelCounter.h"
#include "support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace anosy {

/// Exact ind. set sizes (True/False) of a problem, via model counting.
struct ExactSizes {
  BigCount TrueSize;
  BigCount FalseSize;
};

inline ExactSizes exactIndSetSizes(const BenchmarkProblem &P) {
  Box Top = Box::top(P.M.schema());
  PredicateRef Q = exprPredicate(P.query().Body);
  return {countSatExact(*Q, Top), countSatExact(*notPredicate(Q), Top)};
}

/// The paper's "% diff." column: percentage difference between the
/// approximated and the exact ind. set size (lower is better; 0 = exact).
inline std::string percentDiff(const BigCount &Approx,
                               const BigCount &Exact) {
  if (Exact.isZero())
    return Approx.isZero() ? "0" : "inf";
  double D = (Approx.toDouble() - Exact.toDouble()) / Exact.toDouble();
  if (D < 0)
    D = -D;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.0f", D * 100.0);
  return Buf;
}

/// "x / y" cell in the paper's scientific notation.
inline std::string sizePair(const BigCount &T, const BigCount &F) {
  return T.sci() + " / " + F.sci();
}

/// Runs \p Body \p Runs times and reports median ± SIQR seconds.
inline std::string timeRepeated(unsigned Runs,
                                const std::function<void()> &Body) {
  std::vector<double> Samples;
  for (unsigned I = 0; I != Runs; ++I) {
    Stopwatch W;
    Body();
    Samples.push_back(W.seconds());
  }
  return medianPlusMinus(Samples, 3);
}

/// Parses a "--runs N" override (the paper uses 11; smaller values make
/// quick local runs cheaper).
inline unsigned parseRuns(int Argc, char **Argv, unsigned Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--runs") == 0)
      return static_cast<unsigned>(std::atoi(Argv[I + 1]));
  return Default;
}

} // namespace anosy

#endif // ANOSY_BENCH_BENCHCOMMON_H
