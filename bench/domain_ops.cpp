//===- bench/domain_ops.cpp - Microbenchmarks of the hot operations -------===//
//
// google-benchmark microbenchmarks for the operations bounded downgrade
// executes at runtime (the ones the §6.1 amortization argument says are
// "free": intersections and size computations) and for the solver
// primitives synthesis is built from.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "benchlib/Problems.h"
#include "domains/AbstractDomain.h"
#include "solver/ModelCounter.h"
#include "solver/RangeEval.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace anosy;

namespace {

Box randomBox(Rng &R, int64_t Max) {
  int64_t XL = R.range(0, Max), YL = R.range(0, Max);
  return Box({{XL, R.range(XL, Max)}, {YL, R.range(YL, Max)}});
}

PowerBox randomPowerBox(Rng &R, size_t NumBoxes) {
  std::vector<Box> Inc;
  for (size_t I = 0; I != NumBoxes; ++I)
    Inc.push_back(randomBox(R, 400));
  return PowerBox(2, std::move(Inc), {});
}

void BM_BoxIntersect(benchmark::State &State) {
  Rng R(1);
  Box A = randomBox(R, 400), B = randomBox(R, 400);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.intersect(B));
}
BENCHMARK(BM_BoxIntersect);

void BM_BoxVolume(benchmark::State &State) {
  Rng R(2);
  Box A = randomBox(R, 400);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.volume());
}
BENCHMARK(BM_BoxVolume);

void BM_PowerBoxIntersect(benchmark::State &State) {
  Rng R(3);
  PowerBox A = randomPowerBox(R, static_cast<size_t>(State.range(0)));
  PowerBox B = randomPowerBox(R, static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(A.intersect(B));
}
BENCHMARK(BM_PowerBoxIntersect)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PowerBoxExactSize(benchmark::State &State) {
  Rng R(4);
  PowerBox A = randomPowerBox(R, static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(A.size());
}
BENCHMARK(BM_PowerBoxExactSize)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_PowerBoxLinearEstimate(benchmark::State &State) {
  Rng R(5);
  PowerBox A = randomPowerBox(R, 32);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.sizeLinearEstimate());
}
BENCHMARK(BM_PowerBoxLinearEstimate);

void BM_TriboolEvalNearby(benchmark::State &State) {
  const BenchmarkProblem &NB = nearbyProblem();
  ExprRef Q = NB.M.findQuery("nearby200")->Body;
  Rng R(6);
  Box B = randomBox(R, 400);
  for (auto _ : State)
    benchmark::DoNotOptimize(evalTribool(*Q, B));
}
BENCHMARK(BM_TriboolEvalNearby);

void BM_ExactCountDiamond(benchmark::State &State) {
  const BenchmarkProblem &NB = nearbyProblem();
  PredicateRef Q = exprPredicate(NB.M.findQuery("nearby200")->Body);
  Box Top = Box::top(NB.M.schema());
  for (auto _ : State)
    benchmark::DoNotOptimize(countSatExact(*Q, Top));
}
BENCHMARK(BM_ExactCountDiamond);

/// The same count through the parallel engine with Arg(0) threads; the
/// count is bit-identical, the wall time shows the pool's scaling (or its
/// overhead, on a single-core host).
void BM_ExactCountDiamondParallel(benchmark::State &State) {
  const BenchmarkProblem &NB = nearbyProblem();
  PredicateRef Q = exprPredicate(NB.M.findQuery("nearby200")->Body);
  Box Top = Box::top(NB.M.schema());
  ThreadPool Pool(static_cast<unsigned>(State.range(0)));
  SolverParallel Par;
  Par.Pool = &Pool;
  Par.SequentialCutoffVolume = 1024;
  for (auto _ : State)
    benchmark::DoNotOptimize(countSatExact(*Q, Top, Par));
}
BENCHMARK(BM_ExactCountDiamondParallel)->Arg(2)->Arg(4)->Arg(8);

/// The runtime cost of one bounded downgrade's knowledge update (the
/// "free at runtime" claim of §6.1): intersect + two policy sizes.
void BM_DowngradeKnowledgeUpdate(benchmark::State &State) {
  Rng R(7);
  PowerBox Prior = randomPowerBox(R, 8);
  PowerBox IndT = randomPowerBox(R, 3);
  PowerBox IndF = randomPowerBox(R, 3);
  for (auto _ : State) {
    PowerBox PostT = Prior.intersect(IndT);
    PowerBox PostF = Prior.intersect(IndF);
    benchmark::DoNotOptimize(PostT.size() > 100);
    benchmark::DoNotOptimize(PostF.size() > 100);
  }
}
BENCHMARK(BM_DowngradeKnowledgeUpdate);

/// Exact counting over the whole Mardziel suite, serial vs each thread
/// count, written to BENCH_parallel_ops.json as a scaling curve (fig5a
/// writes the synthesis counterpart to BENCH_parallel.json).
void emitParallelCountReport(const std::vector<unsigned> &Counts) {
  std::vector<ParallelSample> Samples;
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    PredicateRef Q = exprPredicate(P.query().Body);
    Box Top = Box::top(P.M.schema());
    // One serial baseline per benchmark, shared by every curve point.
    double SerialSeconds = medianSeconds(5, [&] { countSatExact(*Q, Top); });
    for (unsigned Threads : Counts) {
      ThreadPool Pool(Threads);
      SolverParallel Par;
      Par.Pool = &Pool;
      if (countSatExact(*Q, Top) != countSatExact(*Q, Top, Par)) {
        std::fprintf(stderr, "DETERMINISM VIOLATION on %s (%u threads)\n",
                     P.Id.c_str(), Threads);
        std::exit(1);
      }
      ParallelSample Sample;
      Sample.Name = P.Id + "/countSat";
      Sample.Threads = Threads;
      Sample.SerialSeconds = SerialSeconds;
      Sample.ParallelSeconds =
          medianSeconds(5, [&] { countSatExact(*Q, Top, Par); });
      Samples.push_back(Sample);
    }
  }
  writeParallelBenchJson("BENCH_parallel_ops.json", Samples,
                         Parallelism{}.resolved());
  std::printf("wrote BENCH_parallel_ops.json (%zu thread counts)\n",
              Counts.size());
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<unsigned> Counts = parseThreadCounts(Argc, Argv);
  // Strip our flags so google-benchmark's parser doesn't reject them.
  std::vector<char *> Passthrough;
  for (int I = 0; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc) {
      ++I;
      continue;
    }
    if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      continue;
    Passthrough.push_back(Argv[I]);
  }
  int PassArgc = static_cast<int>(Passthrough.size());
  benchmark::Initialize(&PassArgc, Passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(PassArgc, Passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  emitParallelCountReport(Counts);
  return 0;
}
