//===- bench/observability_overhead.cpp - Obs disabled-path cost ----------===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the observability cost contract (DESIGN.md §8, obs/Obs.h): with
/// the runtime switch off — the default — instrumentation must cost at
/// most 1% of fig5a-style interval synthesis. The pin is computed from
/// the mechanism, not from run-to-run wall-clock deltas (which drown a
/// sub-1% effect in scheduler noise):
///
///   1. The disabled-path cost of one instrumentation site (a relaxed
///      atomic load and a branch) is measured directly, in a tight loop.
///   2. The number of site activations per synthesis run is bounded from
///      an *enabled* run's span count: sites are phase-grained, and every
///      phase activates well under 10 sites (one span, a few arguments, a
///      couple of counters, one histogram).
///   3. disabled overhead <= activations x site cost / synthesis time.
///
/// Also reports the measured enabled/disabled medians per problem (for
/// reference; tracing itself is phase-grained and cheap) and writes
/// BENCH_observability.json in the same style as the other BENCH reports.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/Instrument.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "synth/Synthesizer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace anosy;

namespace {

/// One fig5a-style pass: interval under-synthesis of the problem's query.
uint64_t synthOnce(const BenchmarkProblem &P) {
  SynthOptions SOpt;
  auto Sy = Synthesizer::create(P.M.schema(), P.query().Body, SOpt);
  if (!Sy) {
    std::fprintf(stderr, "%s: %s\n", P.Id.c_str(), Sy.error().str().c_str());
    return 0;
  }
  SynthStats Stats;
  if (auto R = Sy->synthesizeInterval(ApproxKind::Under, &Stats); !R)
    std::fprintf(stderr, "%s: %s\n", P.Id.c_str(), R.error().str().c_str());
  return Stats.SolverNodes;
}

/// Nanoseconds one disabled instrumentation site costs: the relaxed
/// enabled() load plus its branch, measured over a long loop.
double disabledSiteCostNs() {
  obs::ScopedEnable Off(false);
  constexpr uint64_t Iters = 8'000'000;
  Stopwatch W;
  for (uint64_t I = 0; I != Iters; ++I)
    ANOSY_OBS_COUNT("anosy_bench_disabled_probe_total",
                    "Disabled-path cost probe (never incremented)", 1);
  return W.seconds() * 1e9 / static_cast<double>(Iters);
}

struct Sample {
  std::string Id;
  double OffSeconds = 0;  ///< median, runtime switch off (the default)
  double OnSeconds = 0;   ///< median, tracing + metrics live
  uint64_t SolverNodesOff = 0;
  uint64_t SolverNodesOn = 0;
  size_t SpansPerRun = 0;
  double OverheadFraction = 0; ///< bounded disabled-path overhead
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned Runs = parseRuns(Argc, Argv, 5);

  std::vector<const BenchmarkProblem *> Problems;
  Problems.push_back(&nearbyProblem());
  for (const BenchmarkProblem &P : mardzielBenchmarks())
    Problems.push_back(&P);

  double SiteNs = disabledSiteCostNs();
  std::printf("disabled site cost: %.2f ns\n", SiteNs);

  std::vector<Sample> Samples;
  bool AllWithinBound = true;
  bool AllDeterministic = true;
  for (const BenchmarkProblem *P : Problems) {
    Sample S;
    S.Id = P->Id.empty() ? std::string("nearby") : P->Id;

    {
      obs::ScopedEnable Off(false);
      S.SolverNodesOff = synthOnce(*P);
      S.OffSeconds = medianSeconds(Runs, [&] { synthOnce(*P); });
    }
    {
      obs::ScopedEnable On(true);
      obs::TraceRecorder::global().clear();
      S.SolverNodesOn = synthOnce(*P);
      S.SpansPerRun = obs::TraceRecorder::global().eventCount();
      S.OnSeconds = medianSeconds(Runs, [&] { synthOnce(*P); });
      obs::TraceRecorder::global().clear();
      obs::MetricsRegistry::global().reset();
    }

    // Mechanism bound: <= 10 site activations per recorded span (one
    // span + its arguments + a couple of counters + one histogram), each
    // costing the disabled check.
    double Activations = 10.0 * static_cast<double>(
                                    S.SpansPerRun == 0 ? 1 : S.SpansPerRun);
    S.OverheadFraction =
        S.OffSeconds > 0 ? Activations * SiteNs * 1e-9 / S.OffSeconds : 0;
    AllWithinBound = AllWithinBound && S.OverheadFraction <= 0.01;
    AllDeterministic =
        AllDeterministic && S.SolverNodesOff == S.SolverNodesOn;

    std::printf("%-8s off %.6fs  on %.6fs  spans/run %zu  "
                "disabled overhead %.5f%%  nodes %llu/%llu\n",
                S.Id.c_str(), S.OffSeconds, S.OnSeconds, S.SpansPerRun,
                S.OverheadFraction * 100.0,
                static_cast<unsigned long long>(S.SolverNodesOff),
                static_cast<unsigned long long>(S.SolverNodesOn));
    Samples.push_back(S);
  }

  std::FILE *F = std::fopen("BENCH_observability.json", "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_observability.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"contract\": \"disabled-path instrumentation overhead <= "
               "1%% of fig5a interval synthesis\",\n"
               "  \"disabled_site_cost_ns\": %.3f,\n"
               "  \"site_activations_per_span_bound\": 10,\n"
               "  \"runs_per_median\": %u,\n"
               "  \"all_within_bound\": %s,\n"
               "  \"node_counts_identical_on_off\": %s,\n"
               "  \"samples\": [\n",
               SiteNs, Runs, AllWithinBound ? "true" : "false",
               AllDeterministic ? "true" : "false");
  for (size_t I = 0; I != Samples.size(); ++I) {
    const Sample &S = Samples[I];
    std::fprintf(F,
                 "    {\"id\": \"%s\", \"median_off_s\": %.6f, "
                 "\"median_on_s\": %.6f, \"spans_per_run\": %zu, "
                 "\"solver_nodes\": %llu, "
                 "\"disabled_overhead_fraction\": %.8f, "
                 "\"within_bound\": %s}%s\n",
                 S.Id.c_str(), S.OffSeconds, S.OnSeconds, S.SpansPerRun,
                 static_cast<unsigned long long>(S.SolverNodesOff),
                 S.OverheadFraction, S.OverheadFraction <= 0.01 ? "true"
                                                                : "false",
                 I + 1 == Samples.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote BENCH_observability.json (all_within_bound: %s)\n",
              AllWithinBound ? "true" : "false");
  return AllWithinBound && AllDeterministic ? 0 : 1;
}
