//===- bench/cache_economics.cpp - Cold vs warm registration economics ----===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the cross-process synthesis cache (DESIGN.md §12) on the
/// fig5a suite (Mardziel B1–B5): cold registration (empty cache, full
/// synthesis, then publish) against warm registration (a *fresh*
/// ArtifactCache instance over the primed directory, modeling a new
/// process attaching to a shared cache dir). Writes BENCH_cache.json
/// next to the binary.
///
/// Hard bar (the ISSUE 10 acceptance gate, enforced with exit(1)):
///   - every warm registration performs zero solver nodes — all the
///     work is the refinement re-verify, which is counted separately in
///     CacheVerifyNodes and never touches the BnB solver;
///   - every warm registration hits the cache on every query;
///   - the suite-median warm latency is under 20% of the suite-median
///     cold latency.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cache/ArtifactCache.h"
#include "core/AnosySession.h"
#include "support/Stats.h"

#include <dirent.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace anosy;

namespace {

/// Removes every sharded entry under \p Root (two levels deep) and the
/// directory itself, so a "cold" run truly starts from nothing.
void scrubCacheDir(const std::string &Root) {
  if (DIR *D = ::opendir(Root.c_str())) {
    while (struct dirent *E = ::readdir(D)) {
      if (E->d_name[0] == '.')
        continue;
      std::string Shard = Root + "/" + E->d_name;
      if (DIR *SD = ::opendir(Shard.c_str())) {
        while (struct dirent *F = ::readdir(SD))
          if (F->d_name[0] != '.')
            std::remove((Shard + "/" + F->d_name).c_str());
        ::closedir(SD);
      }
      ::rmdir(Shard.c_str());
    }
    ::closedir(D);
    ::rmdir(Root.c_str());
  }
}

/// One timed registration of \p P against \p Cache.
struct Registration {
  bool Created = false;
  double WallSeconds = 0;
  uint64_t SolverNodes = 0;
  uint64_t VerifyNodes = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
};

Registration registerOnce(const BenchmarkProblem &P, ArtifactCache &Cache) {
  Registration R;
  SessionOptions Opt;
  Opt.Cache = &Cache;
  Stopwatch W;
  auto S = AnosySession<Box>::create(P.M, permissivePolicy<Box>(), Opt);
  R.WallSeconds = W.seconds();
  if (!S.ok())
    return R;
  R.Created = true;
  R.SolverNodes = S->stats().SolverNodes;
  R.VerifyNodes = S->stats().CacheVerifyNodes;
  R.CacheHits = S->stats().CacheHits;
  R.CacheMisses = S->stats().CacheMisses;
  return R;
}

/// Per-problem cold/warm medians plus the contract-relevant counters
/// from the last run of each phase (deterministic on an idle host).
struct CacheSample {
  std::string Problem;
  unsigned Queries = 0;
  double ColdSeconds = 0;
  double WarmSeconds = 0;
  uint64_t ColdSolverNodes = 0;
  uint64_t WarmSolverNodes = 0;
  uint64_t WarmVerifyNodes = 0;
  uint64_t WarmCacheHits = 0;
  bool Ok = false; ///< Created + zero warm solver nodes + all-queries hit.
};

double medianOf(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  return Xs[Xs.size() / 2];
}

void writeCacheJson(const std::string &Path,
                    const std::vector<CacheSample> &Samples,
                    double SuiteCold, double SuiteWarm, bool BarPassed) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"samples\": [\n");
  for (size_t I = 0; I != Samples.size(); ++I) {
    const CacheSample &S = Samples[I];
    double Ratio = S.ColdSeconds > 0 ? S.WarmSeconds / S.ColdSeconds : 0;
    std::fprintf(F,
                 "    {\"problem\": \"%s\", \"queries\": %u, "
                 "\"cold_s\": %.6f, \"warm_s\": %.6f, \"warm_ratio\": %.4f, "
                 "\"cold_solver_nodes\": %llu, \"warm_solver_nodes\": %llu, "
                 "\"warm_verify_nodes\": %llu, \"warm_cache_hits\": %llu, "
                 "\"ok\": %s}%s\n",
                 S.Problem.c_str(), S.Queries, S.ColdSeconds, S.WarmSeconds,
                 Ratio, static_cast<unsigned long long>(S.ColdSolverNodes),
                 static_cast<unsigned long long>(S.WarmSolverNodes),
                 static_cast<unsigned long long>(S.WarmVerifyNodes),
                 static_cast<unsigned long long>(S.WarmCacheHits),
                 S.Ok ? "true" : "false",
                 I + 1 == Samples.size() ? "" : ",");
  }
  std::fprintf(F,
               "  ],\n  \"suite\": {\"cold_median_s\": %.6f, "
               "\"warm_median_s\": %.6f, \"warm_ratio\": %.4f, "
               "\"bar_warm_under_20pct\": %s}\n}\n",
               SuiteCold, SuiteWarm, SuiteCold > 0 ? SuiteWarm / SuiteCold : 0,
               BarPassed ? "true" : "false");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Runs = parseRuns(Argc, Argv, 5);
  const std::string Root = "anosy_cache_bench.tmp";

  std::vector<CacheSample> Samples;
  bool AllOk = true;
  std::printf("%-16s %8s %12s %12s %8s %14s %14s\n", "problem", "queries",
              "cold_s", "warm_s", "ratio", "cold_nodes", "warm_verify");
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    CacheSample S;
    S.Problem = P.Id + " " + P.Name;
    S.Queries = static_cast<unsigned>(P.M.queries().size());

    // Cold: scrub the directory before every run so each one pays full
    // synthesis and the publish path. The last run leaves the directory
    // primed for the warm phase.
    std::vector<double> ColdWalls;
    Registration Cold;
    for (unsigned R = 0; R != Runs; ++R) {
      scrubCacheDir(Root);
      ArtifactCache Cache(Root);
      Cold = registerOnce(P, Cache);
      ColdWalls.push_back(Cold.WallSeconds);
    }
    S.ColdSeconds = medianOf(ColdWalls);
    S.ColdSolverNodes = Cold.SolverNodes;

    // Warm: a fresh ArtifactCache per run over the primed directory —
    // exactly what a new process sharing the cache dir would see.
    std::vector<double> WarmWalls;
    Registration Warm;
    for (unsigned R = 0; R != Runs; ++R) {
      ArtifactCache Cache(Root);
      Warm = registerOnce(P, Cache);
      WarmWalls.push_back(Warm.WallSeconds);
    }
    S.WarmSeconds = medianOf(WarmWalls);
    S.WarmSolverNodes = Warm.SolverNodes;
    S.WarmVerifyNodes = Warm.VerifyNodes;
    S.WarmCacheHits = Warm.CacheHits;
    S.Ok = Cold.Created && Warm.Created && Warm.SolverNodes == 0 &&
           Warm.CacheHits == S.Queries;
    if (!S.Ok) {
      AllOk = false;
      std::fprintf(stderr,
                   "FAIL %s: warm registration must hit on every query with "
                   "zero solver nodes (hits %llu/%u, solver nodes %llu)\n",
                   S.Problem.c_str(),
                   static_cast<unsigned long long>(Warm.CacheHits), S.Queries,
                   static_cast<unsigned long long>(Warm.SolverNodes));
    }
    std::printf("%-16s %8u %12.6f %12.6f %8.4f %14llu %14llu\n",
                S.Problem.c_str(), S.Queries, S.ColdSeconds, S.WarmSeconds,
                S.ColdSeconds > 0 ? S.WarmSeconds / S.ColdSeconds : 0,
                static_cast<unsigned long long>(S.ColdSolverNodes),
                static_cast<unsigned long long>(S.WarmVerifyNodes));
    Samples.push_back(S);
  }
  scrubCacheDir(Root);

  std::vector<double> Colds, Warms;
  for (const CacheSample &S : Samples) {
    Colds.push_back(S.ColdSeconds);
    Warms.push_back(S.WarmSeconds);
  }
  double SuiteCold = medianOf(Colds);
  double SuiteWarm = medianOf(Warms);
  bool BarPassed = AllOk && SuiteCold > 0 && SuiteWarm < 0.20 * SuiteCold;
  writeCacheJson("BENCH_cache.json", Samples, SuiteCold, SuiteWarm, BarPassed);
  std::printf("suite: cold %.6f s, warm %.6f s, ratio %.4f (bar < 0.20)\n",
              SuiteCold, SuiteWarm,
              SuiteCold > 0 ? SuiteWarm / SuiteCold : 0);
  std::printf("wrote BENCH_cache.json (%zu samples)\n", Samples.size());
  if (!BarPassed) {
    std::fprintf(stderr, "FAIL: warm registration bar not met\n");
    return 1;
  }
  return 0;
}
