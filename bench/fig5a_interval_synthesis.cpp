//===- bench/fig5a_interval_synthesis.cpp - Reproduces Fig. 5a ------------===//
//
// Fig. 5a: ind. set synthesis and posterior verification with the
// *interval* abstract domain. For every benchmark and both approximation
// kinds it reports the synthesized sizes (True/False), the % difference
// from the exact ind. sets (Table 1), and verification/synthesis times as
// median ± semi-interquartile over repeated runs (11 by default, like the
// paper; override with --runs N).
//
// Expected divergences from the paper's absolute numbers are discussed in
// EXPERIMENTS.md: our synthesis engine is exact and deterministic, so the
// under sizes are >= and the over sizes <= the paper's Z3-with-timeout
// results; the orderings (under <= exact <= over, B2 relational slowest)
// are the reproduced shape.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "compile/CompiledEval.h"
#include "support/Table.h"
#include "synth/Synthesizer.h"
#include "verify/RefinementChecker.h"

#include <map>

using namespace anosy;

namespace {

/// Serial-vs-parallel synthesis wall times over the suite, one sample per
/// (benchmark, thread count), written to BENCH_parallel.json as a scaling
/// curve. The synthesized sets are bit-identical at every count (asserted
/// here as well as in tests/solver/ParallelDifferentialTest.cpp); only the
/// wall clock may differ, and only on multi-core hosts.
void runParallelSection(unsigned Runs, const std::vector<unsigned> &Counts) {
  std::vector<ParallelSample> Samples;
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    const Schema &S = P.M.schema();
    auto Serial = Synthesizer::create(S, P.query().Body);
    if (!Serial)
      continue;

    auto SynthBoth = [](const Synthesizer &Sy) {
      auto U = Sy.synthesizeInterval(ApproxKind::Under);
      auto O = Sy.synthesizeInterval(ApproxKind::Over);
      if (!U || !O) {
        std::fprintf(stderr, "synthesis failed in parallel section\n");
        std::exit(1);
      }
      return std::make_pair(U.takeValue(), O.takeValue());
    };
    auto Want = SynthBoth(*Serial);
    // One serial baseline per benchmark, shared by every curve point.
    double SerialSeconds = medianSeconds(Runs, [&] { SynthBoth(*Serial); });

    for (unsigned Threads : Counts) {
      ThreadPool Pool(Threads);
      SynthOptions ParOptions;
      ParOptions.Par.Pool = &Pool;
      auto Par = Synthesizer::create(S, P.query().Body, ParOptions);
      if (!Par)
        continue;
      auto Got = SynthBoth(*Par);
      if (Want.first.TrueSet != Got.first.TrueSet ||
          Want.first.FalseSet != Got.first.FalseSet ||
          Want.second.TrueSet != Got.second.TrueSet ||
          Want.second.FalseSet != Got.second.FalseSet) {
        std::fprintf(stderr, "DETERMINISM VIOLATION on %s (%u threads)\n",
                     P.Id.c_str(), Threads);
        std::exit(1);
      }

      ParallelSample Sample;
      Sample.Name = P.Id;
      Sample.Threads = Threads;
      Sample.SerialSeconds = SerialSeconds;
      Sample.ParallelSeconds = medianSeconds(Runs, [&] { SynthBoth(*Par); });
      std::printf("  %s: serial %.4fs, %u threads %.4fs (%.2fx)\n",
                  P.Id.c_str(), Sample.SerialSeconds, Threads,
                  Sample.ParallelSeconds,
                  Sample.ParallelSeconds > 0
                      ? Sample.SerialSeconds / Sample.ParallelSeconds
                      : 0.0);
      Samples.push_back(Sample);
    }
  }
  writeParallelBenchJson("BENCH_parallel.json", Samples,
                         Parallelism{}.resolved());
  std::printf("  wrote BENCH_parallel.json\n");
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Runs = parseRuns(Argc, Argv, 11);
  std::printf("Fig. 5a: interval-domain synthesis and verification "
              "(%u runs)\n\n", Runs);

  // Shared throughput fields (BenchCommon.h): per-benchmark synthesis
  // nodes/sec, summed over both approximation kinds, comparable with
  // BENCH_compiled.json. Variant records the active compiled-eval mode.
  std::map<std::string, ThroughputSample> Throughput;

  for (ApproxKind Kind : {ApproxKind::Under, ApproxKind::Over}) {
    std::printf("== %s-approximation ==\n", approxKindName(Kind));
    TextTable T;
    T.setHeader({"#", "Size", "% diff.", "Verif. time (s)",
                 "Synth. time (s)"});
    for (const BenchmarkProblem &P : mardzielBenchmarks()) {
      const Schema &S = P.M.schema();
      ExactSizes Exact = exactIndSetSizes(P);

      auto Sy = Synthesizer::create(S, P.query().Body);
      if (!Sy) {
        T.addRow({P.Id, Sy.error().str(), "-", "-", "-"});
        continue;
      }
      // One reference synthesis for the sizes (and the node count).
      SynthStats Stats;
      auto Sets = Sy->synthesizeInterval(Kind, &Stats);
      if (!Sets) {
        T.addRow({P.Id, Sets.error().str(), "-", "-", "-"});
        continue;
      }

      double SynthSeconds = 0;
      std::string SynthTime = timeRepeated(Runs, [&Sy, Kind]() {
        auto R = Sy->synthesizeInterval(Kind);
        (void)R;
      }, &SynthSeconds);
      ThroughputSample &TS = Throughput[P.Id];
      TS.Name = P.Id;
      TS.Variant = compiledEvalModeName(compiledEvalMode());
      TS.Seconds += SynthSeconds;
      TS.Nodes += Stats.SolverNodes;
      std::string VerifTime = timeRepeated(Runs, [&]() {
        RefinementChecker Checker(S, P.query().Body);
        CertificateBundle B = Checker.checkIndSets(*Sets, Kind);
        if (!B.valid()) {
          std::fprintf(stderr, "UNEXPECTED verification failure on %s\n",
                       P.Id.c_str());
          std::exit(1);
        }
      });

      T.addRow({P.Id,
                sizePair(Sets->TrueSet.volume(), Sets->FalseSet.volume()),
                percentDiff(Sets->TrueSet.volume(), Exact.TrueSize) + " / " +
                    percentDiff(Sets->FalseSet.volume(), Exact.FalseSize),
                VerifTime, SynthTime});
    }
    std::printf("%s\n", T.render().c_str());
  }

  {
    std::vector<ThroughputSample> Samples;
    for (const auto &KV : Throughput)
      Samples.push_back(KV.second);
    writeThroughputJson("BENCH_throughput_fig5a.json", Samples);
    std::printf("wrote BENCH_throughput_fig5a.json\n\n");
  }

  // Serial-vs-parallel scaling curve (threads = 1, 2, 4, 8 by default;
  // --threads N collapses it to one point; needs real cores to show
  // speedup).
  std::vector<unsigned> Counts = parseThreadCounts(Argc, Argv);
  std::printf("== parallel synthesis: serial vs %zu thread counts ==\n",
              Counts.size());
  runParallelSection(Runs, Counts);
  return 0;
}
