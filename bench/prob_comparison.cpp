//===- bench/prob_comparison.cpp - The §6.1 Prob comparison ---------------===//
//
// §6.1 discussion: ANOSY pays a one-time synthesis cost but computes
// posteriors for free (a domain intersection) and more precisely, whereas
// a Prob-style analyzer re-runs an abstract-interpretation analysis per
// posterior and loses precision at each non-box-representable construct.
//
// This harness compares, per benchmark and response:
//   * posterior size from the step-wise abstract interpreter (the
//     Prob-style baseline, an over-approximation),
//   * ANOSY's over-approximated posterior (interval and powerset k=3),
//   * the exact posterior size,
// plus the amortization table: one-time synthesis cost vs per-posterior
// cost of both approaches over N sequential queries.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "baselines/AbstractInterpreter.h"
#include "support/Table.h"
#include "synth/Synthesizer.h"

using namespace anosy;

int main() {
  std::printf("§6.1 comparison with a Prob-style abstract-interpretation "
              "baseline\n\n== precision (True-response posterior from the "
              "full prior) ==\n");
  TextTable T;
  T.setHeader({"#", "exact", "baseline (AI)", "anosy interval",
               "anosy powerset k=3"});
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    const Schema &S = P.M.schema();
    Box Top = Box::top(S);
    ExactSizes Exact = exactIndSetSizes(P);

    AbstractInterpreter AI;
    Box BasePost = AI.posterior(*P.query().Body, Top, true);

    auto Sy = Synthesizer::create(S, P.query().Body);
    auto Interval = Sy->synthesizeInterval(ApproxKind::Over);
    auto Powerset = Sy->synthesizePowerset(ApproxKind::Over, 3);
    if (!Interval || !Powerset) {
      T.addRow({P.Id, "-", "-", "-", "-"});
      continue;
    }
    T.addRow({P.Id, Exact.TrueSize.sci(),
              BasePost.volume().sci() + " (" +
                  percentDiff(BasePost.volume(), Exact.TrueSize) + "%)",
              Interval->TrueSet.volume().sci() + " (" +
                  percentDiff(Interval->TrueSet.volume(), Exact.TrueSize) +
                  "%)",
              Powerset->TrueSet.size().sci() + " (" +
                  percentDiff(Powerset->TrueSet.size(), Exact.TrueSize) +
                  "%)"});
  }
  std::printf("%s\n", T.render().c_str());

  std::printf("== amortization (nearby query, %d sequential posteriors) "
              "==\n", 50);
  const BenchmarkProblem &NB = nearbyProblem();
  const Schema &S = NB.M.schema();
  ExprRef Q = NB.M.findQuery("nearby200")->Body;

  // One-time ANOSY synthesis.
  Stopwatch W;
  auto Sy = Synthesizer::create(S, Q);
  auto Sets = Sy->synthesizeInterval(ApproxKind::Under);
  double SynthOnce = W.seconds();

  // Per-posterior: ANOSY = two box intersections.
  Box Prior = Box::top(S);
  W.reset();
  for (int I = 0; I != 50; ++I) {
    Box PostT = Prior.intersect(Sets->TrueSet);
    Box PostF = Prior.intersect(Sets->FalseSet);
    (void)PostT;
    (void)PostF;
  }
  double AnosyPer50 = W.seconds();

  // Per-posterior: baseline = full narrowing analysis each time.
  AbstractInterpreter AI;
  W.reset();
  for (int I = 0; I != 50; ++I) {
    auto [PT, PF] = AI.posteriors(*Q, Prior);
    (void)PT;
    (void)PF;
  }
  double BaselinePer50 = W.seconds();

  TextTable A;
  A.setHeader({"approach", "one-time cost (s)", "50 posteriors (s)"});
  char Buf1[32], Buf2[32], Buf3[32];
  std::snprintf(Buf1, sizeof(Buf1), "%.4f", SynthOnce);
  std::snprintf(Buf2, sizeof(Buf2), "%.6f", AnosyPer50);
  std::snprintf(Buf3, sizeof(Buf3), "%.6f", BaselinePer50);
  A.addRow({"anosy (synthesize once, intersect per query)", Buf1, Buf2});
  A.addRow({"prob-style (re-analyze per query)", "0", Buf3});
  std::printf("%s\n", A.render().c_str());
  std::printf("The paper reports synthesis 54.2x slower than one Prob run "
              "but amortized\nover executions; the same crossover shape "
              "holds here: synthesis dominates\nonce, then per-posterior "
              "cost is a constant-time intersection.\n");
  return 0;
}
