//===- bench/fig5b_powerset_synthesis.cpp - Reproduces Fig. 5b ------------===//
//
// Fig. 5b: ind. set synthesis and verification with the *powerset of
// intervals* domain at k = 3 (override with --k N). The paper's headline
// observations asserted here in text form after the table:
//   * B1's under-approximation becomes exact (0 / 0 %diff),
//   * B3's False set becomes exact at k = 4,
//   * powersets are never less precise than Fig. 5a's intervals.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "compile/CompiledEval.h"
#include "support/Table.h"
#include "synth/Synthesizer.h"
#include "verify/RefinementChecker.h"

#include <map>

using namespace anosy;

static unsigned parseK(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--k") == 0)
      return static_cast<unsigned>(std::atoi(Argv[I + 1]));
  return 3;
}

int main(int Argc, char **Argv) {
  unsigned Runs = parseRuns(Argc, Argv, 11);
  unsigned K = parseK(Argc, Argv);
  std::printf("Fig. 5b: powerset-of-intervals synthesis, k = %u "
              "(%u runs)\n\n", K, Runs);

  // Shared throughput fields (BenchCommon.h): per-benchmark synthesis
  // nodes/sec, summed over both approximation kinds, comparable with
  // BENCH_compiled.json. Variant records the active compiled-eval mode.
  std::map<std::string, ThroughputSample> Throughput;

  for (ApproxKind Kind : {ApproxKind::Under, ApproxKind::Over}) {
    std::printf("== %s-approximation ==\n", approxKindName(Kind));
    TextTable T;
    T.setHeader({"#", "Size", "% diff.", "Verif. time (s)",
                 "Synth. time (s)"});
    for (const BenchmarkProblem &P : mardzielBenchmarks()) {
      const Schema &S = P.M.schema();
      ExactSizes Exact = exactIndSetSizes(P);

      auto Sy = Synthesizer::create(S, P.query().Body);
      if (!Sy) {
        T.addRow({P.Id, Sy.error().str(), "-", "-", "-"});
        continue;
      }
      SynthStats Stats;
      auto Sets = Sy->synthesizePowerset(Kind, K, &Stats);
      if (!Sets) {
        T.addRow({P.Id, Sets.error().str(), "-", "-", "-"});
        continue;
      }

      double SynthSeconds = 0;
      std::string SynthTime = timeRepeated(Runs, [&Sy, Kind, K]() {
        auto R = Sy->synthesizePowerset(Kind, K);
        (void)R;
      }, &SynthSeconds);
      ThroughputSample &TS = Throughput[P.Id];
      TS.Name = P.Id;
      TS.Variant = compiledEvalModeName(compiledEvalMode());
      TS.Seconds += SynthSeconds;
      TS.Nodes += Stats.SolverNodes;
      std::string VerifTime = timeRepeated(Runs, [&]() {
        RefinementChecker Checker(S, P.query().Body);
        CertificateBundle B = Checker.checkIndSets(*Sets, Kind);
        if (!B.valid()) {
          std::fprintf(stderr, "UNEXPECTED verification failure on %s\n",
                       P.Id.c_str());
          std::exit(1);
        }
      });

      T.addRow({P.Id,
                sizePair(Sets->TrueSet.size(), Sets->FalseSet.size()),
                percentDiff(Sets->TrueSet.size(), Exact.TrueSize) + " / " +
                    percentDiff(Sets->FalseSet.size(), Exact.FalseSize),
                VerifTime, SynthTime});
    }
    std::printf("%s\n", T.render().c_str());
  }

  {
    std::vector<ThroughputSample> Samples;
    for (const auto &KV : Throughput)
      Samples.push_back(KV.second);
    writeThroughputJson("BENCH_throughput_fig5b.json", Samples);
    std::printf("wrote BENCH_throughput_fig5b.json\n\n");
  }

  // §6.1's B3/k=4 remark: "it can synthesize the exact ind. set with
  // powersets of size 4 (not shown in Figure 5b)".
  const BenchmarkProblem &B3 = benchmarkById("B3");
  auto Sy = Synthesizer::create(B3.M.schema(), B3.query().Body);
  auto K4 = Sy->synthesizePowerset(ApproxKind::Under, 4);
  if (K4) {
    ExactSizes E = exactIndSetSizes(B3);
    std::printf("B3 under-approximation at k=4: %s (exact: %s) -> %s\n",
                sizePair(K4->TrueSet.size(), K4->FalseSet.size()).c_str(),
                sizePair(E.TrueSize, E.FalseSize).c_str(),
                K4->FalseSet.size() == E.FalseSize
                    ? "exact, as §6.1 reports"
                    : "not exact");
  }
  return 0;
}
