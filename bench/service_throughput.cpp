//===- bench/service_throughput.cpp - anosyd service-layer benchmarks -----===//
//
// The two numbers DESIGN.md §10 cares about, written to BENCH_service.json:
//
//   * cold-start recovery: wall time for a fresh daemon to salvage its
//     data directory (re-verify every tenant KB) as the tenant count
//     grows — the synthesize-once/serve-forever split (§6.1) means this
//     is the only expensive step a restart pays;
//   * admitted-vs-shed: the deterministic load-shedding curve as offered
//     load sweeps from half capacity to 3x capacity — exactly capacity
//     requests are admitted, the excess is shed as explicit Overloaded.
//
// Both sections run the daemon in manual-pump mode so the numbers are a
// property of the code, not of the host's scheduler.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "expr/Parser.h"
#include "gen/ScenarioGen.h"

#include <filesystem>
#include "gen/TraceGen.h"
#include "service/Daemon.h"

using namespace anosy;
using namespace anosy::service;

namespace {

DaemonOptions pumpOptions(const std::string &DataDir) {
  DaemonOptions Opt;
  Opt.Workers = 0;
  Opt.WatchdogPollMs = 0;
  Opt.DataDir = DataDir;
  return Opt;
}

/// Registers \p Tenants scenario tenants; returns false on any failure.
bool registerTenants(MonitorDaemon &Daemon, unsigned Tenants,
                     uint64_t Seed) {
  for (unsigned T = 0; T != Tenants; ++T) {
    ScenarioOptions SO;
    SO.Family = static_cast<ScenarioFamily>(T % NumScenarioFamilies);
    SO.Seed = Seed + T;
    SO.Queries = 4;
    SO.PolicyMinSize = 8;
    SO.MaxDomainSize = 4000;
    GeneratedModule GM = generateScenarioModule(SO);
    ServiceRequest Reg;
    Reg.Kind = RequestKind::Register;
    Reg.Tenant = "t" + std::to_string(T);
    Reg.ModuleSource = GM.Source;
    Reg.MinSize = 8;
    if (Daemon.call(std::move(Reg)).Status != ResponseStatus::Ok)
      return false;
  }
  return true;
}

struct ColdStartSample {
  unsigned Tenants = 0;
  unsigned Queries = 0;
  double SalvageSeconds = 0;
  double RegisterSeconds = 0;
};

/// Measures salvage time over growing data directories. The registration
/// time (synthesis from scratch) rides along as the baseline the salvage
/// path is supposed to beat: a restart re-verifies, it does not re-solve.
ColdStartSample coldStart(unsigned Tenants, unsigned Runs) {
  ColdStartSample Sample;
  Sample.Tenants = Tenants;
  // The data dir persists across bench runs: scrub it so a previous
  // run's tenants don't collide with this run's registrations.
  std::string Dir = "bench_service_data/t" + std::to_string(Tenants);
  std::filesystem::remove_all(Dir);

  {
    MonitorDaemon Seeder(pumpOptions(Dir));
    if (!Seeder.start().ok())
      return Sample;
    Stopwatch W;
    if (!registerTenants(Seeder, Tenants, 42))
      return Sample;
    Sample.RegisterSeconds = W.seconds();
    Seeder.drain();
  }

  Sample.SalvageSeconds = medianSeconds(Runs, [&] {
    MonitorDaemon Fresh(pumpOptions(Dir));
    auto Rec = Fresh.start();
    if (!Rec.ok() || Rec->TenantsRecovered != Tenants ||
        Rec->TenantsFailed != 0) {
      std::fprintf(stderr, "cold-start salvage failed at %u tenants\n",
                   Tenants);
      std::exit(1);
    }
    Fresh.drain();
  });
  // Queries recovered, for scale context in the JSON.
  MonitorDaemon Probe(pumpOptions(Dir));
  if (auto Rec = Probe.start(); Rec.ok())
    for (const RecoveredTenant &T : Rec->Tenants)
      Sample.Queries += T.Queries;
  Probe.drain();
  return Sample;
}

struct ShedSample {
  double OfferedFactor = 0;
  unsigned Offered = 0;
  unsigned Admitted = 0;
  unsigned Shed = 0;
  unsigned Ok = 0;
  /// Admitted but answered without a value: policy refusals and coded ⊥
  /// (the sweep attacker exhausts the min-size budget fast, so this
  /// dominates once knowledge narrows — still sound, never shed).
  unsigned Bottom = 0;
  double PumpSeconds = 0;
};

/// One burst at \p Factor x queue capacity against a quiet pump-mode
/// daemon: deterministic shedding, then a timed pump of the backlog.
ShedSample shedPoint(MonitorDaemon &Daemon, const GeneratedTrace &Trace,
                     double Factor) {
  ShedSample Sample;
  Sample.OfferedFactor = Factor;
  Sample.Offered = static_cast<unsigned>(
      Factor * static_cast<double>(Daemon.queueCapacity()));

  std::vector<std::future<ServiceResponse>> Futs;
  for (unsigned I = 0; I != Sample.Offered; ++I) {
    const TraceStep &St = Trace.Steps[I % Trace.Steps.size()];
    ServiceRequest R;
    R.Kind = RequestKind::Downgrade;
    R.Tenant = "t0";
    R.Name = St.Name;
    R.Secret = Trace.Secrets[St.SecretIndex % Trace.Secrets.size()];
    Futs.push_back(Daemon.submit(std::move(R)));
  }
  Stopwatch W;
  Daemon.pump();
  Sample.PumpSeconds = W.seconds();
  for (auto &F : Futs) {
    ServiceResponse Resp = F.get();
    switch (Resp.Status) {
    case ResponseStatus::Ok:
      ++Sample.Admitted;
      ++Sample.Ok;
      break;
    case ResponseStatus::Bottom:
    case ResponseStatus::Refused:
    case ResponseStatus::Error:
      ++Sample.Admitted;
      ++Sample.Bottom;
      break;
    case ResponseStatus::Overloaded:
      ++Sample.Shed;
      break;
    }
  }
  return Sample;
}

void writeServiceBenchJson(const std::vector<ColdStartSample> &Cold,
                           const std::vector<ShedSample> &Shed,
                           unsigned QueueCapacity) {
  std::FILE *F = std::fopen("BENCH_service.json", "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return;
  }
  std::fprintf(F, "{\n  \"cold_start\": [\n");
  for (size_t I = 0; I != Cold.size(); ++I) {
    const ColdStartSample &S = Cold[I];
    std::fprintf(F,
                 "    {\"tenants\": %u, \"queries\": %u, "
                 "\"salvage_s\": %.6f, \"register_s\": %.6f}%s\n",
                 S.Tenants, S.Queries, S.SalvageSeconds, S.RegisterSeconds,
                 I + 1 == Cold.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n  \"queue_capacity\": %u,\n", QueueCapacity);
  std::fprintf(F, "  \"admitted_vs_shed\": [\n");
  for (size_t I = 0; I != Shed.size(); ++I) {
    const ShedSample &S = Shed[I];
    std::fprintf(F,
                 "    {\"offered_factor\": %.2f, \"offered\": %u, "
                 "\"admitted\": %u, \"shed\": %u, \"ok\": %u, "
                 "\"refused_or_bottom\": %u, \"pump_s\": %.6f}%s\n",
                 S.OfferedFactor, S.Offered, S.Admitted, S.Shed, S.Ok,
                 S.Bottom, S.PumpSeconds, I + 1 == Shed.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Runs = parseRuns(Argc, Argv, 5);
  std::printf("anosyd service benchmarks (%u runs)\n\n", Runs);

  std::printf("== cold-start salvage vs tenant count ==\n");
  std::vector<ColdStartSample> Cold;
  for (unsigned Tenants : {1u, 2u, 4u, 8u}) {
    ColdStartSample S = coldStart(Tenants, Runs);
    std::printf("  %u tenants (%u queries): salvage %.4fs, "
                "register %.4fs\n",
                S.Tenants, S.Queries, S.SalvageSeconds, S.RegisterSeconds);
    Cold.push_back(S);
  }

  std::printf("\n== admitted vs shed over offered load ==\n");
  const unsigned Capacity = 16;
  DaemonOptions Opt = pumpOptions("");
  Opt.QueueCapacity = Capacity;
  MonitorDaemon Daemon(Opt);
  if (!Daemon.start().ok() || !registerTenants(Daemon, 1, 42)) {
    std::fprintf(stderr, "shed-curve daemon failed to start\n");
    return 1;
  }
  // A trace over tenant 0's module supplies realistic query traffic.
  ScenarioOptions SO;
  SO.Seed = 42;
  SO.Queries = 4;
  SO.PolicyMinSize = 8;
  SO.MaxDomainSize = 4000;
  GeneratedModule GM = generateScenarioModule(SO);
  auto M = parseModule(GM.Source);
  if (!M) {
    std::fprintf(stderr, "scenario module failed to parse\n");
    return 1;
  }
  TracePolicy TP;
  TP.K = TracePolicy::Kind::MinSize;
  TP.MinSize = 8;
  GeneratedTrace Trace = generateTrace(*M, GM.Name, AttackerStrategy::Sweep,
                                       TP, 7, 64);

  std::vector<ShedSample> Shed;
  for (double Factor : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    ShedSample S = shedPoint(Daemon, Trace, Factor);
    std::printf("  %.1fx capacity: offered %u, admitted %u, shed %u "
                "(pump %.4fs)\n",
                S.OfferedFactor, S.Offered, S.Admitted, S.Shed,
                S.PumpSeconds);
    Shed.push_back(S);
  }
  Daemon.drain();

  writeServiceBenchJson(Cold, Shed, Capacity);
  std::printf("\nwrote BENCH_service.json\n");
  return 0;
}
