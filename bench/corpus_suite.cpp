//===- bench/corpus_suite.cpp - Corpus trajectory numbers -----------------===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario-corpus scorecard (DESIGN.md §9). Generates a deterministic
/// corpus from src/gen, then reports three things:
///
///   1. Shape: module and trace counts per family at the given seed.
///   2. Lint quality: anosy-lint's constant-answer and static-rejection
///      verdicts scored against the exhaustive ground-truth oracle —
///      precision must be 1.0 (both verdicts are soundness claims);
///      recall is the trajectory number we want to see trend upward.
///   3. Soak throughput: oracle-checked session replays per second, the
///      figure that bounds how much corpus a CI soak minute buys.
///
/// Writes BENCH_corpus.json next to the binary (same reporting style as
/// BENCH_static_analysis.json). Flags: --seed N, --per-family K,
/// --traces N, --steps N, --relational off|auto|on (the analyzer's
/// octagon escalation tier; with it enabled, location-family
/// reject-recall must be nonzero — a hard gate, exit 1 on regression).
///
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "gen/Oracle.h"
#include "support/ParseNum.h"
#include "support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace anosy;

namespace {

struct FamilyRow {
  std::string Family;
  unsigned Modules = 0;
  unsigned Traces = 0;
  LintScore Lint;
};

[[noreturn]] void badFlagValue(const char *Flag, const char *Value) {
  std::fprintf(stderr, "error: invalid value for %s: '%s'\n", Flag, Value);
  std::exit(2);
}

void writeCorpusJson(const std::string &Path, const CorpusOptions &Opt,
                     RelationalTier Relational,
                     const std::vector<FamilyRow> &Rows,
                     const LintScore &Total, unsigned Sessions,
                     unsigned Mismatches, double SoakSeconds) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  unsigned Modules = 0, Traces = 0;
  for (const FamilyRow &R : Rows) {
    Modules += R.Modules;
    Traces += R.Traces;
  }
  std::fprintf(F,
               "{\n  \"seed\": %llu,\n  \"modules\": %u,\n"
               "  \"traces\": %u,\n  \"policy_min_size\": %lld,\n"
               "  \"relational\": \"%s\",\n"
               "  \"families\": [\n",
               static_cast<unsigned long long>(Opt.Seed), Modules, Traces,
               static_cast<long long>(Opt.PolicyMinSize),
               relationalTierName(Relational));
  for (size_t I = 0; I != Rows.size(); ++I) {
    const FamilyRow &R = Rows[I];
    std::fprintf(
        F,
        "    {\"family\": \"%s\", \"modules\": %u, \"traces\": %u, "
        "\"const_precision\": %.4f, \"const_recall\": %.4f, "
        "\"reject_precision\": %.4f, \"reject_recall\": %.4f}%s\n",
        R.Family.c_str(), R.Modules, R.Traces,
        LintScore::precision(R.Lint.ConstTP, R.Lint.ConstFP),
        LintScore::recall(R.Lint.ConstTP, R.Lint.ConstFN),
        LintScore::precision(R.Lint.RejectTP, R.Lint.RejectFP),
        LintScore::recall(R.Lint.RejectTP, R.Lint.RejectFN),
        I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(
      F,
      "  ],\n  \"lint\": {\"queries_scored\": %u, \"sound\": %s, "
      "\"const_precision\": %.4f, \"const_recall\": %.4f, "
      "\"reject_precision\": %.4f, \"reject_recall\": %.4f},\n"
      "  \"soak\": {\"sessions\": %u, \"mismatches\": %u, "
      "\"seconds\": %.4f, \"sessions_per_s\": %.2f}\n}\n",
      Total.QueriesScored, Total.sound() ? "true" : "false",
      LintScore::precision(Total.ConstTP, Total.ConstFP),
      LintScore::recall(Total.ConstTP, Total.ConstFN),
      LintScore::precision(Total.RejectTP, Total.RejectFP),
      LintScore::recall(Total.RejectTP, Total.RejectFN), Sessions,
      Mismatches, SoakSeconds,
      SoakSeconds > 0 ? Sessions / SoakSeconds : 0.0);
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  CorpusOptions Opt;
  Opt.ModulesPerFamily = 2;
  RelationalTier Relational = RelationalTier::Auto;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--seed" && (V = Next())) {
      auto N = parseUint64(V);
      if (!N)
        badFlagValue("--seed", V);
      Opt.Seed = *N;
    } else if (Arg == "--per-family" && (V = Next())) {
      auto N = parseUnsigned(V);
      if (!N)
        badFlagValue("--per-family", V);
      Opt.ModulesPerFamily = *N;
    } else if (Arg == "--traces" && (V = Next())) {
      auto N = parseUnsigned(V);
      if (!N)
        badFlagValue("--traces", V);
      Opt.TracesPerModule = *N;
    } else if (Arg == "--steps" && (V = Next())) {
      auto N = parseUnsigned(V);
      if (!N)
        badFlagValue("--steps", V);
      Opt.StepsPerTrace = *N;
    } else if (Arg == "--relational" && (V = Next())) {
      auto T = parseRelationalTier(V);
      if (!T)
        badFlagValue("--relational", V);
      Relational = *T;
    } else {
      std::fprintf(stderr,
                   "usage: corpus_suite [--seed N] [--per-family K] "
                   "[--traces N] [--steps N] [--relational off|auto|on]\n");
      return 2;
    }
  }

  auto C = generateCorpus(Opt);
  if (!C) {
    std::fprintf(stderr, "%s\n", C.error().str().c_str());
    return 1;
  }

  // Per-family lint scorecard against the exhaustive oracle.
  std::vector<FamilyRow> Rows(NumScenarioFamilies);
  for (unsigned F = 0; F != NumScenarioFamilies; ++F)
    Rows[F].Family = scenarioFamilyName(static_cast<ScenarioFamily>(F));
  LintScore Total;
  for (const CorpusEntry &E : C->Entries) {
    FamilyRow &Row = Rows[static_cast<unsigned>(E.Mod.Family)];
    ++Row.Modules;
    Row.Traces += static_cast<unsigned>(E.Traces.size());
    GroundTruth GT = computeGroundTruth(E.Parsed);
    LintScore S = scoreLint(E.Parsed, E.Mod.PolicyMinSize, GT, Relational);
    Row.Lint.merge(S);
    Total.merge(S);
  }

  // Soak throughput: oracle-checked replay of every trace in the corpus.
  Stopwatch Clock;
  unsigned Sessions = 0, Mismatches = 0;
  for (const CorpusEntry &E : C->Entries) {
    for (const GeneratedTrace &T : E.Traces) {
      ReplayResult R = replayWithOracle(E.Parsed, T);
      ++Sessions;
      Mismatches += static_cast<unsigned>(R.Mismatches.size());
      for (const std::string &M : R.Mismatches)
        std::fprintf(stderr, "ORACLE MISMATCH %s: %s\n", T.Name.c_str(),
                     M.c_str());
    }
  }
  double SoakSeconds = Clock.seconds();

  std::printf("%-12s %8s %8s %8s %8s %8s %8s\n", "family", "modules",
              "traces", "c_prec", "c_rec", "r_prec", "r_rec");
  for (const FamilyRow &R : Rows)
    std::printf("%-12s %8u %8u %8.3f %8.3f %8.3f %8.3f\n", R.Family.c_str(),
                R.Modules, R.Traces,
                LintScore::precision(R.Lint.ConstTP, R.Lint.ConstFP),
                LintScore::recall(R.Lint.ConstTP, R.Lint.ConstFN),
                LintScore::precision(R.Lint.RejectTP, R.Lint.RejectFP),
                LintScore::recall(R.Lint.RejectTP, R.Lint.RejectFN));
  std::printf("soak: %u sessions in %.2fs (%.1f sessions/s), %u mismatches\n",
              Sessions, SoakSeconds,
              SoakSeconds > 0 ? Sessions / SoakSeconds : 0.0, Mismatches);

  writeCorpusJson("BENCH_corpus.json", Opt, Relational, Rows, Total,
                  Sessions, Mismatches, SoakSeconds);
  std::printf("wrote BENCH_corpus.json (seed %llu)\n",
              static_cast<unsigned long long>(Opt.Seed));

  // The recall gate: with the octagon tier enabled, the location family
  // (Manhattan-ball queries, the paper's §6.2 workload) must reject
  // statically at nonzero recall. A regression back to 0 means the
  // relational tier silently stopped firing.
  bool RecallGate = true;
  if (Relational != RelationalTier::Off) {
    const FamilyRow &Loc =
        Rows[static_cast<unsigned>(ScenarioFamily::Location)];
    if (Loc.Lint.RejectTP + Loc.Lint.RejectFN != 0 &&
        Loc.Lint.RejectTP == 0) {
      std::fprintf(stderr,
                   "FAIL: location reject-recall is 0 with the relational "
                   "tier enabled (%u forced rejections missed)\n",
                   Loc.Lint.RejectFN);
      RecallGate = false;
    }
  }
  return Mismatches == 0 && Total.sound() && RecallGate ? 0 : 1;
}
