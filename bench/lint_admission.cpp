//===- bench/lint_admission.cpp - Static-analysis cost/benefit ------------===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the static leakage analyzer (DESIGN.md §7) against the
/// Mardziel benchmarks (B1–B5), on three axes:
///
///   1. Cost: lint wall time vs synthesis wall time, for the box tier
///      and for the forced octagon tier (--relational=on). The box tier
///      is pure interval arithmetic (acceptance bar < 5% of synth wall);
///      the octagon escalation adds closed DBMs and must stay < 10%.
///   2. Admission: with a min-size policy and StaticAdmission on, how
///      many queries are rejected before synthesis and how many solver
///      nodes that saves (a statically rejected query spends zero).
///   3. Seeding: solver nodes for interval synthesis with the analyzer's
///      posterior regions confining the search
///      (SynthOptions::TrueRegionSeed/FalseRegionSeed) vs unseeded. The
///      over arm's branch-and-bound bounding runs inside the region
///      instead of the full space, and the region faces extend the split
///      hints.
///
/// Writes BENCH_static_analysis.json next to the binary (same reporting
/// style as BENCH_degradation.json).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/LeakageAnalyzer.h"
#include "analysis/SolverSeeds.h"
#include "core/AnosySession.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace anosy;

namespace {

/// The admission scenario's policy threshold: k = 100 is the paper's
/// qpolicy and small enough that only genuinely tiny posteriors (B3's
/// photo query keeps 4 candidates) reject.
constexpr int64_t AdmissionMinSize = 100;

struct AnalysisSample {
  std::string Id;
  std::string Name;
  double LintSeconds = 0;           ///< Box tier only (--relational=off).
  double LintRelationalSeconds = 0; ///< Octagon tier forced (--relational=on).
  double SynthSeconds = 0;          ///< Unseeded interval under+over.
  unsigned Queries = 0;
  unsigned StaticallyRejected = 0;  ///< At k = AdmissionMinSize.
  uint64_t AdmissionNodesSaved = 0; ///< Unseeded nodes of rejected queries.
  uint64_t NodesUnseeded = 0;
  uint64_t NodesSeeded = 0;
};

/// Interval synthesis (under + over) of every query in \p P, optionally
/// seeded with the analyzer's posterior regions. Returns total solver
/// nodes; wall seconds through \p SecondsOut.
uint64_t synthesizeAll(const BenchmarkProblem &P, const ModuleAnalysis *MA,
                       double &SecondsOut) {
  uint64_t Nodes = 0;
  Stopwatch W;
  for (const QueryDef &Q : P.M.queries()) {
    SynthOptions SOpt;
    if (MA != nullptr)
      if (const QueryAnalysis *QA = MA->find(Q.Name))
        applyAnalysisSeeds(*QA, P.M.schema(), SOpt);
    auto Sy = Synthesizer::create(P.M.schema(), Q.Body, SOpt);
    if (!Sy) {
      std::fprintf(stderr, "%s/%s: %s\n", P.Id.c_str(), Q.Name.c_str(),
                   Sy.error().str().c_str());
      continue;
    }
    SynthStats Stats;
    if (auto R = Sy->synthesizeInterval(ApproxKind::Under, &Stats); !R)
      std::fprintf(stderr, "%s/%s: %s\n", P.Id.c_str(), Q.Name.c_str(),
                   R.error().str().c_str());
    if (auto R = Sy->synthesizeInterval(ApproxKind::Over, &Stats); !R)
      std::fprintf(stderr, "%s/%s: %s\n", P.Id.c_str(), Q.Name.c_str(),
                   R.error().str().c_str());
    Nodes += Stats.SolverNodes;
  }
  SecondsOut = W.seconds();
  return Nodes;
}

AnalysisSample measure(const BenchmarkProblem &P, unsigned Runs) {
  AnalysisSample Sample;
  Sample.Id = P.Id;
  Sample.Name = P.Name;
  Sample.Queries = static_cast<unsigned>(P.M.queries().size());

  // 1. Lint cost (no policy: posterior computation is the dominant
  //    work and is threshold-independent). Box tier and forced-octagon
  //    tier are measured separately; the escalation must stay a rounding
  //    error too (acceptance bar: relational lint < 10% of synth wall).
  LintOptions LOpt;
  LOpt.Relational = RelationalTier::Off;
  Sample.LintSeconds =
      medianSeconds(Runs, [&] { (void)analyzeModule(P.M, LOpt); });
  LintOptions ROpt;
  ROpt.Relational = RelationalTier::On;
  Sample.LintRelationalSeconds =
      medianSeconds(Runs, [&] { (void)analyzeModule(P.M, ROpt); });
  ModuleAnalysis MA = analyzeModule(P.M, LOpt);

  // 2. Admission at k = 100: which queries reject statically, and how
  //    many unseeded solver nodes they would have burned.
  LintOptions AdmissionOpt;
  AdmissionOpt.MinSize = AdmissionMinSize;
  ModuleAnalysis Admission = analyzeModule(P.M, AdmissionOpt);
  for (const QueryDef &Q : P.M.queries()) {
    const QueryAnalysis *QA = Admission.find(Q.Name);
    if (QA == nullptr || !QA->RejectStatically)
      continue;
    ++Sample.StaticallyRejected;
    SynthOptions SOpt;
    auto Sy = Synthesizer::create(P.M.schema(), Q.Body, SOpt);
    if (!Sy)
      continue;
    SynthStats Stats;
    (void)Sy->synthesizeInterval(ApproxKind::Under, &Stats);
    (void)Sy->synthesizeInterval(ApproxKind::Over, &Stats);
    Sample.AdmissionNodesSaved += Stats.SolverNodes;
  }

  // 3. Seeding: node counts with and without the analyzer's regions.
  //    Node counts are deterministic per configuration; the wall time
  //    is the median over Runs.
  std::vector<double> Walls;
  for (unsigned R = 0; R != Runs; ++R) {
    double Secs = 0;
    Sample.NodesUnseeded = synthesizeAll(P, nullptr, Secs);
    Walls.push_back(Secs);
  }
  std::sort(Walls.begin(), Walls.end());
  Sample.SynthSeconds = Walls[Walls.size() / 2];
  double Ignored = 0;
  Sample.NodesSeeded = synthesizeAll(P, &MA, Ignored);
  return Sample;
}

void writeAnalysisJson(const std::string &Path,
                       const std::vector<AnalysisSample> &Samples) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"admission_min_size\": %lld,\n  \"problems\": [\n",
               static_cast<long long>(AdmissionMinSize));
  for (size_t I = 0; I != Samples.size(); ++I) {
    const AnalysisSample &S = Samples[I];
    double Fraction =
        S.SynthSeconds > 0 ? S.LintSeconds / S.SynthSeconds : 0;
    double Reduction =
        S.NodesUnseeded > 0
            ? 1.0 - static_cast<double>(S.NodesSeeded) /
                        static_cast<double>(S.NodesUnseeded)
            : 0;
    std::fprintf(
        F,
        "    {\"id\": \"%s\", \"name\": \"%s\", \"queries\": %u, "
        "\"lint_s\": %.6f, \"lint_relational_s\": %.6f, "
        "\"synth_s\": %.6f, \"lint_fraction\": %.4f, "
        "\"relational_fraction\": %.4f, "
        "\"statically_rejected\": %u, \"admission_nodes_saved\": %llu, "
        "\"nodes_unseeded\": %llu, \"nodes_seeded\": %llu, "
        "\"node_reduction\": %.4f}%s\n",
        S.Id.c_str(), S.Name.c_str(), S.Queries, S.LintSeconds,
        S.LintRelationalSeconds, S.SynthSeconds, Fraction,
        S.SynthSeconds > 0 ? S.LintRelationalSeconds / S.SynthSeconds : 0,
        S.StaticallyRejected,
        static_cast<unsigned long long>(S.AdmissionNodesSaved),
        static_cast<unsigned long long>(S.NodesUnseeded),
        static_cast<unsigned long long>(S.NodesSeeded), Reduction,
        I + 1 == Samples.size() ? "" : ",");
  }
  double LintTotal = 0, RelationalTotal = 0, SynthTotal = 0;
  uint64_t UnseededTotal = 0, SeededTotal = 0;
  unsigned Improved = 0;
  for (const AnalysisSample &S : Samples) {
    LintTotal += S.LintSeconds;
    RelationalTotal += S.LintRelationalSeconds;
    SynthTotal += S.SynthSeconds;
    UnseededTotal += S.NodesUnseeded;
    SeededTotal += S.NodesSeeded;
    if (S.NodesSeeded < S.NodesUnseeded)
      ++Improved;
  }
  std::fprintf(
      F,
      "  ],\n  \"totals\": {\"lint_s\": %.6f, \"lint_relational_s\": %.6f, "
      "\"synth_s\": %.6f, "
      "\"lint_fraction\": %.4f, \"relational_fraction\": %.4f, "
      "\"nodes_unseeded\": %llu, "
      "\"nodes_seeded\": %llu, \"problems_improved\": %u}\n}\n",
      LintTotal, RelationalTotal, SynthTotal,
      SynthTotal > 0 ? LintTotal / SynthTotal : 0,
      SynthTotal > 0 ? RelationalTotal / SynthTotal : 0,
      static_cast<unsigned long long>(UnseededTotal),
      static_cast<unsigned long long>(SeededTotal), Improved);
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Runs = parseRuns(Argc, Argv, 5);

  std::vector<AnalysisSample> Samples;
  std::printf("%-4s %-10s %10s %10s %10s %8s %9s %14s %14s %10s\n", "id",
              "name", "lint_s", "oct_s", "synth_s", "lint_%", "rejected",
              "nodes_unseeded", "nodes_seeded", "reduction");
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    AnalysisSample S = measure(P, Runs);
    double Fraction = S.SynthSeconds > 0 ? S.LintSeconds / S.SynthSeconds : 0;
    double Reduction =
        S.NodesUnseeded > 0
            ? 1.0 - static_cast<double>(S.NodesSeeded) /
                        static_cast<double>(S.NodesUnseeded)
            : 0;
    std::printf(
        "%-4s %-10s %10.6f %10.6f %10.6f %7.2f%% %9u %14llu %14llu %9.1f%%\n",
        S.Id.c_str(), S.Name.c_str(), S.LintSeconds, S.LintRelationalSeconds,
        S.SynthSeconds, Fraction * 100.0, S.StaticallyRejected,
                static_cast<unsigned long long>(S.NodesUnseeded),
                static_cast<unsigned long long>(S.NodesSeeded),
                Reduction * 100.0);
    Samples.push_back(S);
  }
  writeAnalysisJson("BENCH_static_analysis.json", Samples);
  std::printf("wrote BENCH_static_analysis.json (%zu problems)\n",
              Samples.size());
  return 0;
}
