//===- bench/compiled_eval.cpp - Tape vs tree-walk throughput -------------===//
//
// Pins the compiled solver hot path (src/compile, DESIGN.md) against the
// tree-walking evaluators it replaces, on the paper's own workloads:
//
//   * fig5a: interval synthesis (under + over), solver nodes/sec,
//   * fig5b: powerset synthesis at k = 3, solver nodes/sec,
//   * table1: exact ind. set counting, solver nodes/sec,
//   * probe: raw per-box query evaluation, evals/sec, in three variants —
//     tree walk, scalar tape, and the batched SoA tape interpreter.
//
// Every search workload is also a determinism check: the tape is
// bit-identical to the tree walk, so Off-mode and On-mode runs must
// produce byte-equal artifacts and identical node counts, and this
// harness exits nonzero if they do not.
//
// Acceptance bar (hard): on every benchmark, the *batched* tape must
// reach at least tree-walk probe throughput. A regression exits 1, so the
// bar is enforced wherever the bench runs, not just eyeballed in the
// JSON. Results go to BENCH_compiled.json via the shared throughput
// reporter (BenchCommon.h), same fields as the other harnesses.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "compile/CompiledEval.h"
#include "compile/Tape.h"
#include "solver/RangeEval.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

using namespace anosy;

namespace {

/// Runs both interval synthesis arms and returns (artifacts, nodes).
struct IntervalRun {
  IndSets<Box> Under, Over;
  uint64_t Nodes = 0;
};

IntervalRun runInterval(const Synthesizer &Sy) {
  IntervalRun R;
  SynthStats SU, SO;
  auto U = Sy.synthesizeInterval(ApproxKind::Under, &SU);
  auto O = Sy.synthesizeInterval(ApproxKind::Over, &SO);
  if (!U || !O) {
    std::fprintf(stderr, "interval synthesis failed\n");
    std::exit(1);
  }
  R.Under = U.takeValue();
  R.Over = O.takeValue();
  R.Nodes = SU.SolverNodes + SO.SolverNodes;
  return R;
}

struct PowersetRun {
  IndSets<PowerBox> Under, Over;
  uint64_t Nodes = 0;
};

PowersetRun runPowerset(const Synthesizer &Sy, unsigned K) {
  PowersetRun R;
  SynthStats SU, SO;
  auto U = Sy.synthesizePowerset(ApproxKind::Under, K, &SU);
  auto O = Sy.synthesizePowerset(ApproxKind::Over, K, &SO);
  if (!U || !O) {
    std::fprintf(stderr, "powerset synthesis failed\n");
    std::exit(1);
  }
  R.Under = U.takeValue();
  R.Over = O.takeValue();
  R.Nodes = SU.SolverNodes + SO.SolverNodes;
  return R;
}

struct CountRun {
  BigCount TrueSize, FalseSize;
  uint64_t Nodes = 0;
};

CountRun runCount(const BenchmarkProblem &P) {
  CountRun R;
  Box Top = Box::top(P.M.schema());
  PredicateRef Q = exprPredicate(P.query().Body);
  SolverBudget BT, BF;
  CountResult T = countSat(*Q, Top, BT);
  CountResult F = countSat(*notPredicate(Q), Top, BF);
  if (T.Exhausted || F.Exhausted) {
    std::fprintf(stderr, "counting exhausted its budget on %s\n",
                 P.Id.c_str());
    std::exit(1);
  }
  R.TrueSize = T.Count;
  R.FalseSize = F.Count;
  R.Nodes = BT.used() + BF.used();
  return R;
}

/// Random subboxes of the schema's space: the probe workload. Mixes full
/// dimensions with narrow slices so the query's Tribool answer varies.
std::vector<Box> probeBoxes(const Schema &S, size_t N) {
  Box Top = Box::top(S);
  Rng R(/*Seed=*/0xC0FFEEull);
  std::vector<Box> Boxes;
  Boxes.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    std::vector<Interval> Dims;
    Dims.reserve(Top.arity());
    for (unsigned D = 0; D != Top.arity(); ++D) {
      Interval Full = Top.dim(D);
      if (R.range(0, 3) == 0) {
        Dims.push_back(Full);
        continue;
      }
      int64_t A = R.range(Full.Lo, Full.Hi), B = R.range(Full.Lo, Full.Hi);
      Dims.push_back({std::min(A, B), std::max(A, B)});
    }
    Boxes.emplace_back(std::move(Dims));
  }
  return Boxes;
}

void dieOnMismatch(const char *What, const std::string &Id, bool Equal) {
  if (!Equal) {
    std::fprintf(stderr, "TAPE/TREE-WALK MISMATCH (%s) on %s\n", What,
                 Id.c_str());
    std::exit(1);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Runs = parseRuns(Argc, Argv, 5);
  std::printf("Compiled-eval throughput: tape vs tree walk (%u runs)\n\n",
              Runs);
  std::vector<ThroughputSample> Samples;

  // -- Search workloads: fig5a / fig5b / table1 under both modes. -------
  std::printf("== solver nodes/sec (fig5a interval, fig5b powerset k=3, "
              "table1 counting) ==\n");
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    const Schema &S = P.M.schema();

    setCompiledEvalMode(CompiledEvalMode::Off);
    auto SyWalk = Synthesizer::create(S, P.query().Body);
    setCompiledEvalMode(CompiledEvalMode::On);
    auto SyTape = Synthesizer::create(S, P.query().Body);
    if (!SyWalk || !SyTape)
      continue;

    // fig5a. One reference run per mode checks bit-identity; the nodes
    // are deterministic, so they come from the reference run.
    IntervalRun WantI = runInterval(*SyWalk);
    IntervalRun GotI = runInterval(*SyTape);
    dieOnMismatch("fig5a artifacts", P.Id,
                  WantI.Under.TrueSet == GotI.Under.TrueSet &&
                      WantI.Under.FalseSet == GotI.Under.FalseSet &&
                      WantI.Over.TrueSet == GotI.Over.TrueSet &&
                      WantI.Over.FalseSet == GotI.Over.FalseSet &&
                      WantI.Nodes == GotI.Nodes);
    ThroughputSample Walk{P.Id + "_fig5a", "tree_walk",
                          medianSeconds(Runs, [&] { runInterval(*SyWalk); }),
                          WantI.Nodes, 0};
    ThroughputSample Tape{P.Id + "_fig5a", "tape",
                          medianSeconds(Runs, [&] { runInterval(*SyTape); }),
                          GotI.Nodes, 0};
    std::printf("  %s fig5a: tree walk %.0f nodes/s, tape %.0f nodes/s "
                "(%.2fx)\n",
                P.Id.c_str(), Walk.nodesPerSec(), Tape.nodesPerSec(),
                Walk.Seconds > 0 ? Walk.Seconds / Tape.Seconds : 0.0);
    Samples.push_back(Walk);
    Samples.push_back(Tape);

    // fig5b at the figure's k = 3.
    PowersetRun WantP = runPowerset(*SyWalk, 3);
    PowersetRun GotP = runPowerset(*SyTape, 3);
    dieOnMismatch("fig5b artifacts", P.Id,
                  WantP.Under.TrueSet == GotP.Under.TrueSet &&
                      WantP.Under.FalseSet == GotP.Under.FalseSet &&
                      WantP.Over.TrueSet == GotP.Over.TrueSet &&
                      WantP.Over.FalseSet == GotP.Over.FalseSet &&
                      WantP.Nodes == GotP.Nodes);
    Walk = {P.Id + "_fig5b", "tree_walk",
            medianSeconds(Runs, [&] { runPowerset(*SyWalk, 3); }),
            WantP.Nodes, 0};
    Tape = {P.Id + "_fig5b", "tape",
            medianSeconds(Runs, [&] { runPowerset(*SyTape, 3); }),
            GotP.Nodes, 0};
    std::printf("  %s fig5b: tree walk %.0f nodes/s, tape %.0f nodes/s "
                "(%.2fx)\n",
                P.Id.c_str(), Walk.nodesPerSec(), Tape.nodesPerSec(),
                Walk.Seconds > 0 ? Walk.Seconds / Tape.Seconds : 0.0);
    Samples.push_back(Walk);
    Samples.push_back(Tape);

    // table1 exact counting.
    setCompiledEvalMode(CompiledEvalMode::Off);
    CountRun WantC = runCount(P);
    setCompiledEvalMode(CompiledEvalMode::On);
    CountRun GotC = runCount(P);
    dieOnMismatch("table1 counts", P.Id,
                  WantC.TrueSize == GotC.TrueSize &&
                      WantC.FalseSize == GotC.FalseSize &&
                      WantC.Nodes == GotC.Nodes);
    setCompiledEvalMode(CompiledEvalMode::Off);
    Walk = {P.Id + "_table1", "tree_walk",
            medianSeconds(Runs, [&] { runCount(P); }), WantC.Nodes, 0};
    setCompiledEvalMode(CompiledEvalMode::On);
    Tape = {P.Id + "_table1", "tape",
            medianSeconds(Runs, [&] { runCount(P); }), GotC.Nodes, 0};
    std::printf("  %s table1: tree walk %.0f nodes/s, tape %.0f nodes/s "
                "(%.2fx)\n",
                P.Id.c_str(), Walk.nodesPerSec(), Tape.nodesPerSec(),
                Walk.Seconds > 0 ? Walk.Seconds / Tape.Seconds : 0.0);
    Samples.push_back(Walk);
    Samples.push_back(Tape);
  }

  // -- Probe workload: raw per-box evaluation, evals/sec. ---------------
  // This is where the acceptance bar lives: the batched tape must not
  // lose to the tree walk on any benchmark.
  std::printf("\n== probe evals/sec (tree walk vs scalar tape vs batched "
              "tape) ==\n");
  const size_t ProbeBoxes = 4096;
  const size_t ProbeIters = 32;
  bool BarFailed = false;
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    ExprRef Q = P.query().Body;
    TapeRef T = Tape::compile(*Q);
    if (!T) {
      std::fprintf(stderr, "query failed to compile on %s\n", P.Id.c_str());
      return 1;
    }
    std::vector<Box> Boxes = probeBoxes(P.M.schema(), ProbeBoxes);
    BoxBatch Batch;
    Batch.assign(Boxes.data(), Boxes.size());
    TapeScratch Scratch;
    std::vector<Tribool> Out(Boxes.size());
    const uint64_t Evals = ProbeBoxes * ProbeIters;

    // The three variants must agree before their clocks matter.
    T->runBatch(Batch, Scratch, Out.data());
    for (size_t I = 0; I != Boxes.size(); ++I) {
      Tribool Want = evalTribool(*Q, Boxes[I]);
      dieOnMismatch("probe scalar", P.Id, T->run(Boxes[I], Scratch) == Want);
      dieOnMismatch("probe batch", P.Id, Out[I] == Want);
    }

    ThroughputSample Walk{P.Id + "_probe", "tree_walk",
                          medianSeconds(Runs,
                                        [&] {
                                          for (size_t It = 0; It != ProbeIters;
                                               ++It)
                                            for (const Box &B : Boxes)
                                              (void)evalTribool(*Q, B);
                                        }),
                          0, Evals};
    ThroughputSample Scalar{P.Id + "_probe", "tape",
                            medianSeconds(Runs,
                                          [&] {
                                            for (size_t It = 0;
                                                 It != ProbeIters; ++It)
                                              for (const Box &B : Boxes)
                                                (void)T->run(B, Scratch);
                                          }),
                            0, Evals};
    ThroughputSample Batched{P.Id + "_probe", "tape_batch",
                             medianSeconds(Runs,
                                           [&] {
                                             for (size_t It = 0;
                                                  It != ProbeIters; ++It)
                                               T->runBatch(Batch, Scratch,
                                                           Out.data());
                                           }),
                             0, Evals};
    std::printf("  %s: tree walk %.2fM/s, scalar tape %.2fM/s, batched "
                "tape %.2fM/s (%.2fx)\n",
                P.Id.c_str(), Walk.evalsPerSec() / 1e6,
                Scalar.evalsPerSec() / 1e6, Batched.evalsPerSec() / 1e6,
                Walk.Seconds > 0 ? Walk.Seconds / Batched.Seconds : 0.0);
    if (Batched.evalsPerSec() < Walk.evalsPerSec()) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAILURE: batched tape below tree walk on %s "
                   "(%.0f < %.0f evals/s)\n",
                   P.Id.c_str(), Batched.evalsPerSec(), Walk.evalsPerSec());
      BarFailed = true;
    }
    Samples.push_back(Walk);
    Samples.push_back(Scalar);
    Samples.push_back(Batched);
  }

  writeThroughputJson(
      "BENCH_compiled.json", Samples,
      "  \"acceptance\": \"tape_batch evals/sec >= tree_walk on every "
      "benchmark (hard-fail)\",\n  \"probe_boxes\": " +
          std::to_string(ProbeBoxes) +
          ",\n  \"probe_iters\": " + std::to_string(ProbeIters) + ",\n");
  std::printf("\n  wrote BENCH_compiled.json\n");
  if (BarFailed) {
    std::fprintf(stderr, "compiled-eval acceptance bar FAILED\n");
    return 1;
  }
  std::printf("  acceptance bar held: batched tape >= tree walk on every "
              "benchmark\n");
  return 0;
}
