//===- bench/table1_exact_indsets.cpp - Reproduces Table 1 ----------------===//
//
// Table 1: "Number of fields in the secret, and size of the precise ind.
// sets x/y for our benchmarks". The precise sizes are computed with the
// exact branch-and-bound model counter; the paper's reported values are
// printed alongside for comparison (B1/B3 are pinned exactly; B2/B4/B5
// use reconstructed bounds, see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "compile/CompiledEval.h"
#include "support/Table.h"

using namespace anosy;

int main() {
  std::printf("Table 1: size of the precise ind. sets (True / False)\n\n");

  const char *PaperSizes[] = {
      "259 / 13246",        // B1
      "1.01e+06 / 2.43e+07", // B2
      "4 / 884",             // B3
      "1.37e+10 / 2.81e+13", // B4
      "2160 / 6.72e+06",     // B5
  };

  TextTable T;
  T.setHeader({"#", "Name", "No. of fields", "Size of ind. sets",
               "(paper)"});
  // Shared throughput fields (BenchCommon.h): counting nodes/sec per
  // benchmark, comparable with BENCH_compiled.json.
  std::vector<ThroughputSample> Throughput;
  size_t Row = 0;
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    Stopwatch W;
    uint64_t Nodes = 0;
    ExactSizes E = exactIndSetSizes(P, &Nodes);
    double Secs = W.seconds();
    T.addRow({P.Id, P.Name, std::to_string(P.M.schema().arity()),
              sizePair(E.TrueSize, E.FalseSize), PaperSizes[Row]});
    std::fprintf(stderr, "[%s counted exactly in %.3fs]\n", P.Id.c_str(),
                 Secs);
    Throughput.push_back({P.Id, compiledEvalModeName(compiledEvalMode()),
                          Secs, Nodes, 0});
    ++Row;
  }
  std::printf("%s\n", T.render().c_str());
  writeThroughputJson("BENCH_throughput_table1.json", Throughput);
  std::printf("wrote BENCH_throughput_table1.json\n\n");
  std::printf("B1 and B3 match the paper exactly (their encodings are "
              "pinned by Table 1);\nB2/B4/B5 use reconstructed secret "
              "bounds and match in order of magnitude.\n");
  return 0;
}
