//===- bench/degradation_deadlines.cpp - Deadline-sweep degradation -------===//
//
// Part of anosy-cpp (see DESIGN.md).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps session wall-clock deadlines over the Mardziel benchmarks
/// (B1–B5) and measures how gracefully synthesis degrades: how many
/// queries fall off the strict path, how much solver work each deadline
/// buys, and what fraction of the unlimited run's indistinguishability
/// coverage the degraded artifacts retain. Writes BENCH_degradation.json
/// next to the binary (same reporting style as the BENCH_parallel
/// report in domain_ops.cpp).
///
/// Coverage metric: for each query, |True| + |False| of the synthesized
/// under-approximating boxes, summed over the problem's queries, as a
/// ratio against the unlimited baseline. A ⊥ fallback contributes 0; a
/// partial artifact contributes whatever sound volume the interrupted
/// run had accumulated. Ratios are in [0, 1] because every degraded
/// rung only ever keeps sound (smaller-or-equal) under-approximations.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AnosySession.h"
#include "support/Stats.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace anosy;

namespace {

/// One (problem, budget) measurement. Exactly one of DeadlineMs /
/// NodeCap is nonzero per sweep row (both zero = unlimited baseline).
struct DegradationSample {
  std::string Problem;
  uint64_t DeadlineMs = 0; ///< Wall-clock deadline; 0 = none.
  uint64_t NodeCap = 0;    ///< MaxSessionNodes; 0 = unlimited.
  bool Created = false;    ///< Session creation succeeded (it always
                           ///< should under graceful degradation).
  unsigned Queries = 0;
  unsigned DegradedQueries = 0;
  unsigned BottomFallbacks = 0;
  uint64_t SolverNodes = 0;
  double WallSeconds = 0;
  double Coverage = 0; ///< Summed |True|+|False| volume (absolute).
};

double coveredVolume(const AnosySession<Box> &S, const Module &M) {
  double Total = 0;
  for (const QueryDef &Q : M.queries())
    if (const QueryArtifacts<Box> *A = S.artifacts(Q.Name))
      Total += A->Ind.TrueSet.volume().toDouble() +
               A->Ind.FalseSet.volume().toDouble();
  return Total;
}

DegradationSample measure(const BenchmarkProblem &P, uint64_t DeadlineMs,
                          uint64_t NodeCap) {
  DegradationSample Sample;
  Sample.Problem = P.Id + " " + P.Name;
  Sample.DeadlineMs = DeadlineMs;
  Sample.NodeCap = NodeCap;
  Sample.Queries = static_cast<unsigned>(P.M.queries().size());

  SessionOptions Opt;
  Opt.DeadlineMs = DeadlineMs;
  Opt.MaxSessionNodes = NodeCap;
  Opt.Retry.MaxAttempts = (DeadlineMs == 0 && NodeCap == 0) ? 1 : 2;
  Opt.GracefulDegradation = true;

  Stopwatch W;
  auto S = AnosySession<Box>::create(P.M, permissivePolicy<Box>(), Opt);
  Sample.WallSeconds = W.seconds();
  if (!S.ok())
    return Sample;
  Sample.Created = true;
  Sample.SolverNodes = S->stats().SolverNodes;
  // Exhausted passes under-report in SynthStats (the synthesizer stops
  // tallying when a decider bails); the chained session budget's own
  // counter is the authoritative spend when one is armed.
  if (const SolverBudget *B = S->sessionBudget())
    Sample.SolverNodes = std::max(Sample.SolverNodes, B->used());
  Sample.DegradedQueries = S->stats().DegradedQueries;
  for (const QueryDegradation &Q : S->degradation().Queries)
    if (Q.FellBack)
      ++Sample.BottomFallbacks;
  Sample.Coverage = coveredVolume(*S, P.M);
  return Sample;
}

void writeDegradationJson(const std::string &Path,
                          const std::vector<DegradationSample> &Samples) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  // Baseline coverage per problem (the deadline-0 row) for the ratio.
  std::fprintf(F, "{\n  \"samples\": [\n");
  for (size_t I = 0; I != Samples.size(); ++I) {
    const DegradationSample &S = Samples[I];
    double Baseline = 0;
    for (const DegradationSample &B : Samples)
      if (B.Problem == S.Problem && B.DeadlineMs == 0 && B.NodeCap == 0)
        Baseline = B.Coverage;
    double Ratio = Baseline > 0 ? S.Coverage / Baseline : 0;
    std::fprintf(F,
                 "    {\"problem\": \"%s\", \"deadline_ms\": %llu, "
                 "\"max_session_nodes\": %llu, "
                 "\"created\": %s, \"queries\": %u, \"degraded\": %u, "
                 "\"bottom_fallbacks\": %u, \"solver_nodes\": %llu, "
                 "\"wall_s\": %.6f, \"coverage_ratio\": %.4f}%s\n",
                 S.Problem.c_str(),
                 static_cast<unsigned long long>(S.DeadlineMs),
                 static_cast<unsigned long long>(S.NodeCap),
                 S.Created ? "true" : "false", S.Queries, S.DegradedQueries,
                 S.BottomFallbacks,
                 static_cast<unsigned long long>(S.SolverNodes), S.WallSeconds,
                 Ratio, I + 1 == Samples.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  // Deadline 0 is the unlimited baseline; the sweep then tightens from
  // generous to hostile. On fast hosts the small problems finish inside
  // even the 1 ms bucket (the deadline is checked at coarse node
  // granularity, so short runs complete untouched — that is the point:
  // degradation only engages when work would actually overrun).
  // Two sweeps share the unlimited baseline row. The wall-clock sweep
  // measures the production knob; on a fast host B1–B5 finish inside
  // even the 1 ms bucket (deadlines are checked at coarse node
  // granularity, so short runs complete untouched — that is the
  // point: degradation only engages when work would actually overrun).
  // The node-cap sweep makes the degradation ladder fire
  // deterministically so the coverage column is meaningful everywhere.
  const uint64_t Deadlines[] = {100, 20, 5, 1};
  const uint64_t NodeCaps[] = {2000, 500, 100};
  unsigned Runs = parseRuns(Argc, Argv, 3);

  std::vector<DegradationSample> Samples;
  std::printf("%-16s %12s %12s %9s %9s %14s %10s\n", "problem",
              "deadline_ms", "node_cap", "degraded", "bottom", "solver_nodes",
              "wall_s");
  auto Sweep = [&](const BenchmarkProblem &P, uint64_t DeadlineMs,
                   uint64_t NodeCap) {
    // Median wall time over Runs repeats; the artifact-shape fields
    // come from the last run (they are deterministic per budget on an
    // idle host, and the JSON marks degradation as observed, not
    // guaranteed).
    DegradationSample Best;
    std::vector<double> Walls;
    for (unsigned R = 0; R != Runs; ++R) {
      Best = measure(P, DeadlineMs, NodeCap);
      Walls.push_back(Best.WallSeconds);
    }
    std::sort(Walls.begin(), Walls.end());
    Best.WallSeconds = Walls[Walls.size() / 2];
    std::printf("%-16s %12llu %12llu %9u %9u %14llu %10.4f\n",
                Best.Problem.c_str(),
                static_cast<unsigned long long>(Best.DeadlineMs),
                static_cast<unsigned long long>(Best.NodeCap),
                Best.DegradedQueries, Best.BottomFallbacks,
                static_cast<unsigned long long>(Best.SolverNodes),
                Best.WallSeconds);
    Samples.push_back(Best);
  };
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    Sweep(P, 0, 0); // unlimited baseline
    for (uint64_t DeadlineMs : Deadlines)
      Sweep(P, DeadlineMs, 0);
    for (uint64_t NodeCap : NodeCaps)
      Sweep(P, 0, NodeCap);
  }
  writeDegradationJson("BENCH_degradation.json", Samples);
  std::printf("wrote BENCH_degradation.json (%zu samples)\n", Samples.size());
  return 0;
}
