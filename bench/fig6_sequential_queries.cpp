//===- bench/fig6_sequential_queries.cpp - Reproduces Fig. 6 --------------===//
//
// Fig. 6: the secure advertising system (§6.2). For each powerset size
// k ∈ {1, 3, 5, 7, 10}, 20 experiment instances run a sequence of 50
// nearby queries (random restaurant origins in the 400x400 space, random
// secret per instance) under qpolicy "size > 100"; an instance stops at
// its first policy violation. The table prints, per query index, how many
// instances were still running — the Y values of Fig. 6's survival
// curves — plus the per-k maximum and mean.
//
// Shape targets (asserted in the epilogue): k = 1 dies first; the
// maximum answered grows with k; large k sustains the longest sequences
// (the paper reaches 7 queries at k=1-ish interval precision and 14 at
// k = 10).
//
//===----------------------------------------------------------------------===//

#include "benchlib/Advertising.h"

#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>
#include <cstring>

using namespace anosy;

int main(int Argc, char **Argv) {
  AdvertisingConfig Base;
  for (int I = 1; I + 1 < Argc; ++I) {
    if (std::strcmp(Argv[I], "--instances") == 0)
      Base.NumInstances = static_cast<unsigned>(std::atoi(Argv[I + 1]));
    if (std::strcmp(Argv[I], "--restaurants") == 0)
      Base.NumRestaurants = static_cast<unsigned>(std::atoi(Argv[I + 1]));
  }

  const unsigned Ks[] = {1, 3, 5, 7, 10};
  std::printf("Fig. 6: instances still running after the i-th "
              "declassification query\n(%u instances, %u restaurant "
              "queries, qpolicy: size > %lld)\n\n",
              Base.NumInstances, Base.NumRestaurants,
              static_cast<long long>(Base.PolicyMinSize));

  std::vector<AdvertisingResult> Results;
  unsigned MaxShown = 0;
  for (unsigned K : Ks) {
    AdvertisingConfig Config = Base;
    Config.PowersetSize = K;
    Stopwatch W;
    Results.push_back(runAdvertisingExperiment(Config));
    std::fprintf(stderr, "[k=%u done in %.2fs]\n", K, W.seconds());
    MaxShown = std::max(MaxShown, Results.back().maxAnswered());
  }

  TextTable T;
  T.setHeader({"query #", "k=1", "k=3", "k=5", "k=7", "k=10"});
  for (unsigned Q = 0; Q != MaxShown + 1 && Q != Base.NumRestaurants; ++Q) {
    std::vector<std::string> Row{std::to_string(Q + 1)};
    for (const AdvertisingResult &R : Results)
      Row.push_back(std::to_string(R.Survivors[Q]));
    T.addRow(std::move(Row));
  }
  std::printf("%s\n", T.render().c_str());

  TextTable Summary;
  Summary.setHeader({"k", "max queries answered", "mean"});
  for (size_t I = 0; I != Results.size(); ++I) {
    char Mean[32];
    std::snprintf(Mean, sizeof(Mean), "%.1f", Results[I].meanAnswered());
    Summary.addRow({std::to_string(Ks[I]),
                    std::to_string(Results[I].maxAnswered()), Mean});
  }
  std::printf("%s\n", Summary.render().c_str());

  // Shape assertions.
  bool K1Least =
      Results.front().maxAnswered() <= Results.back().maxAnswered();
  std::printf("shape check: k=1 max (%u) <= k=10 max (%u): %s\n",
              Results.front().maxAnswered(), Results.back().maxAnswered(),
              K1Least ? "ok" : "VIOLATED");
  std::printf("paper reference: max 7 queries at interval precision, 14 at "
              "k=10.\n");
  return K1Least ? 0 : 1;
}
