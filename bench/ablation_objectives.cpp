//===- bench/ablation_objectives.cpp - Design-choice ablations ------------===//
//
// Ablations called out in DESIGN.md:
//   1. Objective mode (volume / balanced / pareto-width) — the paper's
//      §5.3 prefers Pareto so "no single optimization objective dominates"
//      (20x20 over 400x1); this table quantifies what each scalarization
//      costs or buys in under-approximation size.
//   2. Restart count — maximal boxes are seed-dependent; more seeds find
//      strictly larger maximal boxes.
//   3. Knowledge compaction cap — the PowerBox include-list cap that tames
//      the k1*k2 intersection growth of §6.2, versus its precision cost.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AnosySession.h"
#include "expr/Parser.h"
#include "support/Table.h"
#include "synth/Synthesizer.h"

using namespace anosy;

int main() {
  // --- Ablation 1: objective modes on the benchmark suite. ---
  std::printf("== ablation 1: grow objective (interval under-approx, "
              "True set size) ==\n");
  TextTable T1;
  T1.setHeader({"#", "exact", "volume", "balanced", "pareto-width"});
  for (const BenchmarkProblem &P : mardzielBenchmarks()) {
    ExactSizes Exact = exactIndSetSizes(P);
    std::vector<std::string> Row{P.Id, Exact.TrueSize.sci()};
    for (GrowObjective Obj :
         {GrowObjective::Volume, GrowObjective::Balanced,
          GrowObjective::ParetoWidth}) {
      SynthOptions Opt;
      Opt.Objective = Obj;
      auto Sy = Synthesizer::create(P.M.schema(), P.query().Body, Opt);
      auto Sets = Sy->synthesizeInterval(ApproxKind::Under);
      Row.push_back(Sets ? Sets->TrueSet.volume().sci()
                         : Sets.error().str());
    }
    T1.addRow(std::move(Row));
  }
  std::printf("%s\n", T1.render().c_str());

  // --- Ablation 2: restart count on the nearby diamond. ---
  std::printf("== ablation 2: seed restarts (nearby diamond, volume "
              "objective) ==\n");
  const BenchmarkProblem &NB = nearbyProblem();
  TextTable T2;
  T2.setHeader({"restarts", "under True size", "synth time (s)"});
  for (unsigned Restarts : {1u, 2u, 4u, 8u, 16u}) {
    SynthOptions Opt;
    Opt.Objective = GrowObjective::Volume;
    Opt.Restarts = Restarts;
    auto Sy = Synthesizer::create(NB.M.schema(),
                                  NB.M.findQuery("nearby200")->Body, Opt);
    Stopwatch W;
    auto Sets = Sy->synthesizeInterval(ApproxKind::Under);
    double Secs = W.seconds();
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.4f", Secs);
    T2.addRow({std::to_string(Restarts),
               Sets ? Sets->TrueSet.volume().str() : "-", Buf});
  }
  std::printf("%s\n", T2.render().c_str());

  // --- Ablation 3: knowledge compaction cap in a query sequence. ---
  std::printf("== ablation 3: PowerBox include cap over 8 sequential "
              "nearby downgrades ==\n");
  // The secret sits in a corner and answers False to every ring query, so
  // the tracked knowledge is an intersection of complements — the include
  // count grows multiplicatively (§6.2) and the cap becomes the active
  // constraint. The policy is permissive to isolate representation
  // effects from enforcement.
  SessionOptions SOpt;
  SOpt.PowersetSize = 5;
  SOpt.Verify = false;
  // 8 nearby queries in a ring around the secret.
  std::string Source =
      "secret UserLoc { x: int[0, 400], y: int[0, 400] }\n"
      "def nearby(ox: int, oy: int): bool = "
      "abs(x - ox) + abs(y - oy) <= 100\n";
  const int64_t Origins[8][2] = {{150, 150}, {250, 150}, {150, 250},
                                 {250, 250}, {120, 200}, {280, 200},
                                 {200, 120}, {200, 280}};
  for (int I = 0; I != 8; ++I)
    Source += "query q" + std::to_string(I) + " = nearby(" +
              std::to_string(Origins[I][0]) + ", " +
              std::to_string(Origins[I][1]) + ")\n";
  auto M = parseModule(Source);
  if (!M) {
    std::fprintf(stderr, "%s\n", M.error().str().c_str());
    return 1;
  }

  TextTable T3;
  T3.setHeader({"cap", "queries answered", "final knowledge size",
                "final include boxes", "time (s)"});
  for (size_t Cap : {4u, 16u, 64u, 256u}) {
    SOpt.MaxKnowledgeBoxes = Cap;
    auto Session = AnosySession<PowerBox>::create(
        *M, permissivePolicy<PowerBox>(), SOpt);
    if (!Session) {
      std::fprintf(stderr, "%s\n", Session.error().str().c_str());
      return 1;
    }
    Point Secret{5, 5};
    Stopwatch W;
    unsigned Answered = 0;
    for (const QueryDef &Q : M->queries())
      if (Session->downgrade(Secret, Q.Name).ok())
        ++Answered;
      else
        break;
    double Secs = W.seconds();
    PowerBox K = Session->tracker().knowledgeFor(Secret);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.4f", Secs);
    T3.addRow({std::to_string(Cap), std::to_string(Answered),
               K.size().str(), std::to_string(K.includes().size()), Buf});
  }
  std::printf("%s\n", T3.render().c_str());
  std::printf("Lower caps trade knowledge-set precision (and thus "
              "permissiveness)\nfor bounded representation growth; caps "
              "only ever shrink the tracked\nset, so enforcement stays "
              "sound at every setting.\n");
  return 0;
}
