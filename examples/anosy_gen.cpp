//===- examples/anosy_gen.cpp - Corpus & workload generator driver --------===//
//
// The command-line face of src/gen (DESIGN.md §9): deterministic scenario
// corpora, adversarial traffic traces, oracle-checked replay, and the
// randomized fault sweep.
//
//   anosy_gen modules --family F [--seed N] [--count K] [--min-size M]
//                     [--max-domain D] [--out DIR]
//       Emit K scenario modules of family F (location, census, medical,
//       auction, probe, adversarial) to stdout or DIR/<name>.anosy.
//
//   anosy_gen traces <module.anosy> --strategy S [--policy P] [--seed N]
//                     [--steps N]
//       Emit one trace (sweep, repeat, bisect, hostile, interleave;
//       policy permissive | min-size:K | min-entropy:B) to stdout.
//
//   anosy_gen corpus [--seed N] [--per-family K] [--traces N] [--steps N]
//                     [--min-size M] [--max-domain D] --out DIR
//       Emit a full corpus: every family, modules plus paired traces
//       (DIR/<module>.anosy, DIR/<trace>.trace). Byte-deterministic in
//       the options — this is how tests/corpus/ was produced.
//
//   anosy_gen replay <module.anosy> <trace.trace> [--no-kb-check]
//       Replay the trace through an AnosySession<Box> under the trace's
//       policy, cross-checked against the exhaustive oracle. Exit 1 on
//       any oracle mismatch.
//
//   anosy_gen soak [--seed N] [--sessions N] [--dump-dir DIR] ...
//       Generate corpora on rotating seeds and oracle-replay every trace
//       until N sessions have run; prints throughput. On mismatch, dumps
//       the offending module and trace to DIR (for CI artifact upload)
//       and exits 1.
//
//   anosy_gen faults [--seed N] [--scenarios N] [--dump-dir DIR]
//       The randomized failure sweep: each scenario arms the
//       deterministic fault harness (support/FaultInjection.h) with a
//       random site configuration, then runs an oracle-checked replay
//       plus a file-based knowledge-base write/read/recover cycle. Every
//       scenario must end in soundness — degraded answers are fine,
//       wrong answers or crashes are not. Exit 1 on violation, with the
//       scenario's seed printed for exact replay.
//
//===----------------------------------------------------------------------===//

#include "core/ArtifactIO.h"
#include "expr/Parser.h"
#include "gen/Corpus.h"
#include "gen/Oracle.h"
#include "gen/ScenarioGen.h"
#include "gen/TraceGen.h"
#include "service/LoadHarness.h"
#include "support/FaultInjection.h"
#include "support/ParseNum.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace anosy;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: anosy_gen modules --family F [--seed N] [--count K]\n"
      "                 [--min-size M] [--max-domain D] [--out DIR]\n"
      "   or: anosy_gen traces <module.anosy> --strategy S [--policy P]\n"
      "                 [--seed N] [--steps N]\n"
      "   or: anosy_gen corpus [--seed N] [--per-family K] [--traces N]\n"
      "                 [--steps N] [--min-size M] [--max-domain D]\n"
      "                 --out DIR\n"
      "   or: anosy_gen kb <module.anosy> [--min-size N] [--out FILE]\n"
      "   or: anosy_gen replay <module.anosy> <trace.trace> "
      "[--no-kb-check]\n"
      "   or: anosy_gen soak [--seed N] [--sessions N] [--per-family K]\n"
      "                 [--traces N] [--steps N] [--dump-dir DIR]\n"
      "                 [--sps X] [--tenants N] [--workers N]\n"
      "                 [--queue-capacity N] [--deadline-ms N] [--burst X]\n"
      "       (--sps/--tenants/--burst switch to daemon mode: a\n"
      "        MonitorDaemon is driven with interleaved multi-tenant\n"
      "        traces at X sessions/s, oracle-checked)\n"
      "   or: anosy_gen faults [--seed N] [--scenarios N] "
      "[--dump-dir DIR]\n"
      "families: location census medical auction probe adversarial\n"
      "strategies: sweep repeat bisect hostile interleave\n"
      "policies: permissive | min-size:K | min-entropy:B\n");
  return 2;
}

[[noreturn]] void badFlagValue(const char *Flag, const char *Value) {
  std::fprintf(stderr, "error: invalid value for %s: '%s'\n", Flag, Value);
  std::exit(2);
}

uint64_t parseUint64Flag(const char *Flag, const char *Value) {
  auto V = parseUint64(Value);
  if (!V)
    badFlagValue(Flag, Value);
  return *V;
}

unsigned parseUnsignedFlag(const char *Flag, const char *Value) {
  auto V = parseUnsigned(Value);
  if (!V)
    badFlagValue(Flag, Value);
  return *V;
}

int64_t parseInt64Flag(const char *Flag, const char *Value) {
  auto V = parseInt64(Value);
  if (!V)
    badFlagValue(Flag, Value);
  return *V;
}

/// "permissive", "min-size:K", or "min-entropy:B".
TracePolicy parsePolicyFlag(const char *Value) {
  std::string V = Value;
  TracePolicy P;
  if (V == "permissive") {
    P.K = TracePolicy::Kind::Permissive;
    return P;
  }
  size_t Colon = V.find(':');
  if (Colon != std::string::npos) {
    std::string Head = V.substr(0, Colon);
    auto N = parseInt64(V.substr(Colon + 1));
    if (N && *N >= 0 && Head == "min-size") {
      P.K = TracePolicy::Kind::MinSize;
      P.MinSize = *N;
      return P;
    }
    if (N && *N >= 0 && Head == "min-entropy") {
      P.K = TracePolicy::Kind::MinEntropy;
      P.Bits = *N;
      return P;
    }
  }
  badFlagValue("--policy", Value);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Text;
  return static_cast<bool>(Out.flush());
}

/// mkdir -p for one level; fine if it already exists.
bool ensureDir(const std::string &Dir) {
  if (::mkdir(Dir.c_str(), 0755) == 0 || errno == EEXIST)
    return true;
  return false;
}

Result<Module> parseModuleFile(const std::string &Path, std::string *SourceOut) {
  std::string Source;
  if (!readFile(Path, Source))
    return Error(ErrorCode::Other, "cannot open " + Path);
  if (SourceOut != nullptr)
    *SourceOut = Source;
  return parseModule(Source);
}

/// Dumps the artifacts a failing replay needs for offline reproduction.
void dumpFailure(const std::string &Dir, const GeneratedModule &Mod,
                 const GeneratedTrace &Trace, const ReplayResult &R) {
  if (Dir.empty() || !ensureDir(Dir))
    return;
  writeFile(Dir + "/" + Mod.Name + ".anosy", Mod.Source);
  writeFile(Dir + "/" + Trace.Name + ".trace", renderTrace(Trace));
  std::string Report;
  for (const std::string &M : R.Mismatches)
    Report += M + "\n";
  writeFile(Dir + "/" + Trace.Name + ".mismatches.txt", Report);
  std::fprintf(stderr, "dumped failing module/trace to %s\n", Dir.c_str());
}

int printReplay(const ReplayResult &R, const std::string &TraceName) {
  std::printf("%s: %u steps, %u admitted, %u refused, %u unknown-name\n",
              TraceName.c_str(), R.Stats.Steps, R.Stats.Admitted,
              R.Stats.Refused, R.Stats.UnknownName);
  for (const std::string &M : R.Mismatches)
    std::fprintf(stderr, "ORACLE MISMATCH: %s\n", M.c_str());
  return R.ok() ? 0 : 1;
}

int runModules(int Argc, char **Argv) {
  ScenarioOptions SOpt;
  unsigned Count = 1;
  std::string OutDir;
  bool FamilySet = false;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--family" && (V = Next())) {
      auto F = scenarioFamilyByName(V);
      if (!F)
        badFlagValue("--family", V);
      SOpt.Family = *F;
      FamilySet = true;
    } else if (Arg == "--seed" && (V = Next())) {
      SOpt.Seed = parseUint64Flag("--seed", V);
    } else if (Arg == "--count" && (V = Next())) {
      Count = parseUnsignedFlag("--count", V);
    } else if (Arg == "--min-size" && (V = Next())) {
      SOpt.PolicyMinSize = parseInt64Flag("--min-size", V);
    } else if (Arg == "--max-domain" && (V = Next())) {
      SOpt.MaxDomainSize = parseInt64Flag("--max-domain", V);
    } else if (Arg == "--out" && (V = Next())) {
      OutDir = V;
    } else {
      return usage();
    }
  }
  if (!FamilySet)
    return usage();
  if (!OutDir.empty() && !ensureDir(OutDir)) {
    std::fprintf(stderr, "error: cannot create %s\n", OutDir.c_str());
    return 1;
  }
  for (unsigned I = 0; I != Count; ++I) {
    ScenarioOptions One = SOpt;
    One.Seed = SOpt.Seed + I;
    GeneratedModule Mod = generateScenarioModule(One);
    if (OutDir.empty()) {
      std::printf("%s", Mod.Source.c_str());
    } else {
      std::string Path = OutDir + "/" + Mod.Name + ".anosy";
      if (!writeFile(Path, Mod.Source)) {
        std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", Path.c_str());
    }
  }
  return 0;
}

int runTraces(int Argc, char **Argv) {
  std::string ModulePath;
  AttackerStrategy Strategy = AttackerStrategy::Sweep;
  bool StrategySet = false;
  TracePolicy Policy;
  uint64_t Seed = 1;
  unsigned Steps = 12;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--strategy" && (V = Next())) {
      auto S = attackerStrategyByName(V);
      if (!S)
        badFlagValue("--strategy", V);
      Strategy = *S;
      StrategySet = true;
    } else if (Arg == "--policy" && (V = Next())) {
      Policy = parsePolicyFlag(V);
    } else if (Arg == "--seed" && (V = Next())) {
      Seed = parseUint64Flag("--seed", V);
    } else if (Arg == "--steps" && (V = Next())) {
      Steps = parseUnsignedFlag("--steps", V);
    } else if (!Arg.empty() && Arg[0] != '-' && ModulePath.empty()) {
      ModulePath = Arg;
    } else {
      return usage();
    }
  }
  if (ModulePath.empty() || !StrategySet)
    return usage();
  auto M = parseModuleFile(ModulePath, nullptr);
  if (!M) {
    std::fprintf(stderr, "%s: %s\n", ModulePath.c_str(),
                 M.error().str().c_str());
    return 1;
  }
  size_t Slash = ModulePath.find_last_of('/');
  std::string Stem =
      Slash == std::string::npos ? ModulePath : ModulePath.substr(Slash + 1);
  if (Stem.size() > 6 && Stem.rfind(".anosy") == Stem.size() - 6)
    Stem.resize(Stem.size() - 6);
  GeneratedTrace T = generateTrace(*M, Stem, Strategy, Policy, Seed, Steps);
  std::printf("%s", renderTrace(T).c_str());
  return 0;
}

int runCorpus(int Argc, char **Argv) {
  CorpusOptions Opt;
  std::string OutDir;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--seed" && (V = Next())) {
      Opt.Seed = parseUint64Flag("--seed", V);
    } else if (Arg == "--per-family" && (V = Next())) {
      Opt.ModulesPerFamily = parseUnsignedFlag("--per-family", V);
    } else if (Arg == "--traces" && (V = Next())) {
      Opt.TracesPerModule = parseUnsignedFlag("--traces", V);
    } else if (Arg == "--steps" && (V = Next())) {
      Opt.StepsPerTrace = parseUnsignedFlag("--steps", V);
    } else if (Arg == "--min-size" && (V = Next())) {
      Opt.PolicyMinSize = parseInt64Flag("--min-size", V);
    } else if (Arg == "--max-domain" && (V = Next())) {
      Opt.MaxDomainSize = parseInt64Flag("--max-domain", V);
    } else if (Arg == "--out" && (V = Next())) {
      OutDir = V;
    } else {
      return usage();
    }
  }
  if (OutDir.empty())
    return usage();
  if (!ensureDir(OutDir)) {
    std::fprintf(stderr, "error: cannot create %s\n", OutDir.c_str());
    return 1;
  }
  auto C = generateCorpus(Opt);
  if (!C) {
    std::fprintf(stderr, "%s\n", C.error().str().c_str());
    return 1;
  }
  size_t Modules = 0, Traces = 0;
  for (const CorpusEntry &E : C->Entries) {
    if (!writeFile(OutDir + "/" + E.Mod.Name + ".anosy", E.Mod.Source)) {
      std::fprintf(stderr, "error: cannot write %s/%s.anosy\n",
                   OutDir.c_str(), E.Mod.Name.c_str());
      return 1;
    }
    ++Modules;
    for (const GeneratedTrace &T : E.Traces) {
      if (!writeFile(OutDir + "/" + T.Name + ".trace", renderTrace(T))) {
        std::fprintf(stderr, "error: cannot write %s/%s.trace\n",
                     OutDir.c_str(), T.Name.c_str());
        return 1;
      }
      ++Traces;
    }
  }
  std::printf("corpus seed %llu: wrote %zu modules, %zu traces to %s\n",
              static_cast<unsigned long long>(Opt.Seed), Modules, Traces,
              OutDir.c_str());
  return 0;
}

// Synthesizes a session for the module and writes its exported knowledge
// base — how the generated .akb seeds in tests/fuzz/kb_corpus were made.
int runKb(int Argc, char **Argv) {
  std::string ModulePath, OutPath;
  int64_t MinSize = -1;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--out" && (V = Next()))
      OutPath = V;
    else if (Arg == "--min-size" && (V = Next()))
      MinSize = parseInt64Flag("--min-size", V);
    else if (!Arg.empty() && Arg[0] != '-' && ModulePath.empty())
      ModulePath = Arg;
    else
      return usage();
  }
  if (ModulePath.empty())
    return usage();
  auto M = parseModuleFile(ModulePath, nullptr);
  if (!M) {
    std::fprintf(stderr, "%s: %s\n", ModulePath.c_str(),
                 M.error().str().c_str());
    return 1;
  }
  TracePolicy Policy;
  if (MinSize >= 0) {
    Policy.K = TracePolicy::Kind::MinSize;
    Policy.MinSize = MinSize;
  } else {
    Policy.K = TracePolicy::Kind::Permissive;
  }
  auto Session = AnosySession<Box>::create(*M, tracePolicyFor(Policy), {});
  if (!Session) {
    std::fprintf(stderr, "%s: %s\n", ModulePath.c_str(),
                 Session.error().str().c_str());
    return 1;
  }
  std::string Kb = Session->exportKnowledgeBase();
  if (OutPath.empty()) {
    std::printf("%s", Kb.c_str());
    return 0;
  }
  if (auto W = writeKnowledgeBaseFileAtomic(OutPath, Kb); !W) {
    std::fprintf(stderr, "%s: %s\n", OutPath.c_str(),
                 W.error().str().c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}

int runReplay(int Argc, char **Argv) {
  std::string ModulePath, TracePath;
  bool KbCheck = true;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--no-kb-check")
      KbCheck = false;
    else if (!Arg.empty() && Arg[0] != '-' && ModulePath.empty())
      ModulePath = Arg;
    else if (!Arg.empty() && Arg[0] != '-' && TracePath.empty())
      TracePath = Arg;
    else
      return usage();
  }
  if (ModulePath.empty() || TracePath.empty())
    return usage();
  auto M = parseModuleFile(ModulePath, nullptr);
  if (!M) {
    std::fprintf(stderr, "%s: %s\n", ModulePath.c_str(),
                 M.error().str().c_str());
    return 1;
  }
  std::string TraceText;
  if (!readFile(TracePath, TraceText)) {
    std::fprintf(stderr, "error: cannot open %s\n", TracePath.c_str());
    return 1;
  }
  auto T = parseTrace(TraceText);
  if (!T) {
    std::fprintf(stderr, "%s: %s\n", TracePath.c_str(),
                 T.error().str().c_str());
    return 1;
  }
  ReplayResult R = replayWithOracle(*M, *T, {}, KbCheck);
  return printReplay(R, T->Name);
}

/// Daemon-mode soak: drive an in-process MonitorDaemon with interleaved
/// multi-tenant traffic at a target sessions-per-second rate (or as
/// overload bursts), oracle-checking every admitted answer.
int runDaemonSoak(uint64_t Seed, unsigned Sessions, unsigned Steps,
                  double Sps, unsigned TenantCount, unsigned Workers,
                  size_t QueueCapacity, uint64_t DeadlineMs, double Burst) {
  service::DaemonOptions DOpt;
  DOpt.Workers = Workers;
  DOpt.QueueCapacity = QueueCapacity;
  DOpt.DefaultDeadlineMs = DeadlineMs;
  service::MonitorDaemon Daemon(DOpt);
  if (auto S = Daemon.start(); !S) {
    std::fprintf(stderr, "daemon start failed: %s\n",
                 S.error().str().c_str());
    return 1;
  }
  service::LoadOptions LOpt;
  LOpt.Tenants = TenantCount;
  LOpt.Sessions = Sessions;
  LOpt.StepsPerSession = Steps != 0 ? Steps : 12;
  LOpt.Seed = Seed;
  LOpt.SessionsPerSecond = Sps;
  LOpt.BurstFactor = Burst;
  LOpt.StepDeadlineMs = DeadlineMs;
  service::LoadReport Rep = service::runLoad(Daemon, LOpt);
  service::DrainReport Drain = Daemon.drain();
  std::printf("%s\n", service::renderLoadReport(Rep).c_str());
  std::printf("soak: %llu steps over %u tenants in %.2fs "
              "(%.1f sessions/s), admitted %llu, shed %llu, bottom %llu, "
              "refused %llu, %llu mismatches; drained %llu\n",
              static_cast<unsigned long long>(Rep.Steps),
              Rep.TenantsRegistered, Rep.Seconds, Rep.AchievedSps,
              static_cast<unsigned long long>(Rep.Admitted),
              static_cast<unsigned long long>(Rep.Shed),
              static_cast<unsigned long long>(Rep.Bottom),
              static_cast<unsigned long long>(Rep.Refused),
              static_cast<unsigned long long>(Rep.Mismatches),
              static_cast<unsigned long long>(Drain.Drained));
  for (const std::string &Msg : Rep.MismatchNotes)
    std::fprintf(stderr, "  %s\n", Msg.c_str());
  return Rep.Mismatches == 0 && Rep.TenantsFailed == 0 ? 0 : 1;
}

int runSoak(int Argc, char **Argv) {
  uint64_t Seed = 1;
  unsigned Sessions = 50;
  std::string DumpDir;
  CorpusOptions Shape;
  Shape.ModulesPerFamily = 1;
  bool DaemonMode = false;
  double Sps = 0, Burst = 0;
  unsigned TenantCount = 4, Workers = 2, SoakSteps = 0;
  size_t QueueCapacity = 64;
  uint64_t DeadlineMs = 0;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--seed" && (V = Next())) {
      Seed = parseUint64Flag("--seed", V);
    } else if (Arg == "--sessions" && (V = Next())) {
      Sessions = parseUnsignedFlag("--sessions", V);
    } else if (Arg == "--per-family" && (V = Next())) {
      Shape.ModulesPerFamily = parseUnsignedFlag("--per-family", V);
    } else if (Arg == "--traces" && (V = Next())) {
      Shape.TracesPerModule = parseUnsignedFlag("--traces", V);
    } else if (Arg == "--steps" && (V = Next())) {
      Shape.StepsPerTrace = parseUnsignedFlag("--steps", V);
      SoakSteps = Shape.StepsPerTrace;
    } else if (Arg == "--dump-dir" && (V = Next())) {
      DumpDir = V;
    } else if (Arg == "--sps" && (V = Next())) {
      Sps = std::atof(V);
      DaemonMode = true;
    } else if (Arg == "--tenants" && (V = Next())) {
      TenantCount = parseUnsignedFlag("--tenants", V);
      DaemonMode = true;
    } else if (Arg == "--workers" && (V = Next())) {
      Workers = parseUnsignedFlag("--workers", V);
    } else if (Arg == "--queue-capacity" && (V = Next())) {
      QueueCapacity = parseUnsignedFlag("--queue-capacity", V);
    } else if (Arg == "--deadline-ms" && (V = Next())) {
      DeadlineMs = parseUint64Flag("--deadline-ms", V);
    } else if (Arg == "--burst" && (V = Next())) {
      Burst = std::atof(V);
      DaemonMode = true;
    } else {
      return usage();
    }
  }
  if (DaemonMode)
    return runDaemonSoak(Seed, Sessions, SoakSteps, Sps, TenantCount,
                         Workers, QueueCapacity, DeadlineMs, Burst);

  Stopwatch Clock;
  unsigned Ran = 0;
  uint64_t Round = 0;
  unsigned Failures = 0;
  while (Ran < Sessions) {
    Shape.Seed = Seed + Round++;
    auto C = generateCorpus(Shape);
    if (!C) {
      std::fprintf(stderr, "corpus seed %llu: %s\n",
                   static_cast<unsigned long long>(Shape.Seed),
                   C.error().str().c_str());
      return 1;
    }
    for (const CorpusEntry &E : C->Entries) {
      for (const GeneratedTrace &T : E.Traces) {
        if (Ran >= Sessions)
          break;
        ReplayResult R = replayWithOracle(E.Parsed, T);
        ++Ran;
        if (!R.ok()) {
          ++Failures;
          std::fprintf(stderr, "FAIL %s (corpus seed %llu):\n",
                       T.Name.c_str(),
                       static_cast<unsigned long long>(Shape.Seed));
          for (const std::string &M : R.Mismatches)
            std::fprintf(stderr, "  %s\n", M.c_str());
          dumpFailure(DumpDir, E.Mod, T, R);
        }
      }
    }
  }
  double Secs = Clock.seconds();
  std::printf("soak: %u sessions in %.2fs (%.1f sessions/s), %u failures, "
              "base seed %llu\n",
              Ran, Secs, Secs > 0 ? Ran / Secs : 0.0, Failures,
              static_cast<unsigned long long>(Seed));
  return Failures == 0 ? 0 : 1;
}

/// One randomized fault scenario; returns false on an invariant breach.
bool faultScenario(uint64_t Seed, const std::string &DumpDir) {
  Rng R(Seed ^ 0xfa017ULL);

  // A random harness configuration: each site independently enabled.
  FaultConfig FC;
  FC.Seed = Seed;
  bool Any = false;
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    if (R.range(0, 2) == 0)
      continue;
    FC.Sites[S].OneIn = static_cast<uint64_t>(1) << R.range(0, 6);
    FC.Sites[S].MaxFaults = static_cast<uint64_t>(R.range(0, 3));
    Any = true;
  }
  if (!Any)
    FC.Sites[static_cast<unsigned>(FaultSite::SolverCharge)].OneIn = 4;

  // A small scenario module and trace, rotated by seed.
  ScenarioOptions SOpt;
  SOpt.Family = static_cast<ScenarioFamily>(Seed % NumScenarioFamilies);
  SOpt.Seed = Seed;
  SOpt.MaxDomainSize = 2'000;
  GeneratedModule Mod = generateScenarioModule(SOpt);
  auto M = parseModule(Mod.Source);
  if (!M) {
    std::fprintf(stderr, "fault scenario %llu: generated module does not "
                         "parse: %s\n",
                 static_cast<unsigned long long>(Seed),
                 M.error().str().c_str());
    return false;
  }
  TracePolicy Policy;
  Policy.MinSize = SOpt.PolicyMinSize;
  GeneratedTrace T = generateTrace(
      *M, Mod.Name,
      static_cast<AttackerStrategy>((Seed / 3) % NumAttackerStrategies),
      Policy, Seed, 8);

  // Invariant 1: with the harness armed, the replay may degrade — refuse
  // more, fall to ⊥ — but every oracle soundness check must still hold.
  faults::configure(FC);
  ReplayResult Replay = replayWithOracle(*M, T);
  bool Ok = Replay.ok();
  if (!Ok) {
    std::fprintf(stderr, "FAIL fault scenario %llu (replay):\n",
                 static_cast<unsigned long long>(Seed));
    for (const std::string &Msg : Replay.Mismatches)
      std::fprintf(stderr, "  %s\n", Msg.c_str());
    dumpFailure(DumpDir, Mod, T, Replay);
  }

  // Invariant 2: the crash-safe knowledge-base file cycle. Writes either
  // land completely or fail cleanly; reads surface corruption as clean
  // errors or recoverable records — never a crash, never silent misuse.
  auto Session =
      AnosySession<Box>::create(*M, tracePolicyFor(T.Policy), {});
  if (Session) {
    std::string Kb = Session->exportKnowledgeBase();
    std::string Path = "/tmp/anosy_gen_faults_" +
                       std::to_string(static_cast<unsigned long long>(Seed)) +
                       ".akb";
    auto W = writeKnowledgeBaseFileAtomic(Path, Kb);
    if (W) {
      auto Text = readKnowledgeBaseFile(Path);
      if (Text) {
        // Corrupted reads must be caught by the v2 checksums: loading
        // either succeeds (possibly resynthesizing damaged records) or
        // fails with a clean whole-file error.
        auto Reloaded = AnosySession<Box>::createFromKnowledgeBase(
            *Text, tracePolicyFor(T.Policy), {});
        (void)Reloaded;
      }
    }
    // With the harness disarmed, a previously successful atomic write
    // must read back byte-identical.
    faults::reset();
    if (W) {
      auto Clean = readKnowledgeBaseFile(Path);
      if (!Clean || *Clean != Kb) {
        std::fprintf(stderr,
                     "FAIL fault scenario %llu: atomic KB write did not "
                     "read back intact\n",
                     static_cast<unsigned long long>(Seed));
        Ok = false;
      }
    }
    std::remove(Path.c_str());
  }
  faults::reset();
  return Ok;
}

int runFaults(int Argc, char **Argv) {
  uint64_t Seed = 1;
  unsigned Scenarios = 25;
  std::string DumpDir;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--seed" && (V = Next())) {
      Seed = parseUint64Flag("--seed", V);
    } else if (Arg == "--scenarios" && (V = Next())) {
      Scenarios = parseUnsignedFlag("--scenarios", V);
    } else if (Arg == "--dump-dir" && (V = Next())) {
      DumpDir = V;
    } else {
      return usage();
    }
  }
  Stopwatch Clock;
  unsigned Failures = 0;
  for (unsigned I = 0; I != Scenarios; ++I)
    if (!faultScenario(Seed + I, DumpDir))
      ++Failures;
  std::printf("faults: %u scenarios in %.2fs, %u failures, base seed %llu\n",
              Scenarios, Clock.seconds(), Failures,
              static_cast<unsigned long long>(Seed));
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "modules") == 0)
    return runModules(Argc, Argv);
  if (std::strcmp(Argv[1], "traces") == 0)
    return runTraces(Argc, Argv);
  if (std::strcmp(Argv[1], "corpus") == 0)
    return runCorpus(Argc, Argv);
  if (std::strcmp(Argv[1], "kb") == 0)
    return runKb(Argc, Argv);
  if (std::strcmp(Argv[1], "replay") == 0)
    return runReplay(Argc, Argv);
  if (std::strcmp(Argv[1], "soak") == 0)
    return runSoak(Argc, Argv);
  if (std::strcmp(Argv[1], "faults") == 0)
    return runFaults(Argc, Argv);
  return usage();
}
