//===- examples/birthday_service.cpp - B1 as an application ---------------===//
//
// A "birthday week" widget: a social app wants to know, day after day,
// whether a user's birthday falls in the coming week — without ever
// pinning down the birthday (or the birth year) itself. This is exactly
// Mardziel et al.'s Birthday problem (the paper's B1), run as a sequence
// of sliding-window downgrades against one secret.
//
// The example also shows the two abstract domains side by side: the
// interval domain authorizes fewer sliding windows than the powerset
// domain because each non-window answer carves a stripe the interval
// domain cannot represent (it must keep the convex hull).
//
// Build & run:  ./build/examples/birthday_service
//
//===----------------------------------------------------------------------===//

#include "core/AnosySession.h"
#include "expr/Parser.h"

#include <cstdio>
#include <string>

using namespace anosy;

namespace {

/// Builds the module with one window query per week start.
Module buildModule(unsigned NumWeeks) {
  std::string Source =
      "secret Birthday { bday: int[0, 364], byear: int[1956, 1992] }\n"
      "def in_week(start: int): bool = bday >= start && bday < start + 7\n";
  for (unsigned W = 0; W != NumWeeks; ++W)
    Source += "query week" + std::to_string(W) + " = in_week(" +
              std::to_string(W * 7) + ")\n";
  auto M = parseModule(Source);
  if (!M) {
    std::fprintf(stderr, "%s\n", M.error().str().c_str());
    std::exit(1);
  }
  return M.takeValue();
}

template <AbstractDomain D>
unsigned runService(const Module &M, const char *DomainName, unsigned K,
                    const Point &Secret) {
  SessionOptions Options;
  Options.PowersetSize = K;
  auto Session =
      AnosySession<D>::create(M, minSizePolicy<D>(200), Options);
  if (!Session) {
    std::fprintf(stderr, "%s\n", Session.error().str().c_str());
    std::exit(1);
  }
  std::printf("-- %s domain (policy: keep > 200 candidates) --\n",
              DomainName);
  // The widget probes weeks in a scattered order (as real usage would:
  // holiday weeks first), which is what separates the domains — each
  // negative answer carves a stripe out of the year, and a single
  // interval cannot represent a year with holes in it.
  const unsigned Order[] = {6, 2, 9, 0, 4, 8, 1, 11, 3, 7, 5, 10};
  unsigned Answered = 0;
  for (unsigned Idx : Order) {
    const QueryDef &Q = M.queries()[Idx];
    auto R = Session->downgrade(Secret, Q.Name);
    if (!R) {
      std::printf("  %-7s REFUSED: %s\n", Q.Name.c_str(),
                  errorCodeName(R.error().code()));
      break;
    }
    ++Answered;
    BigCount Left =
        DomainTraits<D>::size(Session->tracker().knowledgeFor(Secret));
    std::printf("  %-7s -> %-5s (%s candidate birthdays remain)\n",
                Q.Name.c_str(), *R ? "true" : "false", Left.str().c_str());
    if (*R)
      break; // found the birthday week; the widget stops asking
  }
  std::printf("  answered %u window queries\n\n", Answered);
  return Answered;
}

} // namespace

int main() {
  Module M = buildModule(/*NumWeeks=*/12);
  Point Secret{61, 1984}; // March 2nd, 1984 — in week 8 ([56, 63))

  std::printf("secret birthday: day %lld of year %lld "
              "(the service never sees this)\n\n",
              static_cast<long long>(Secret[0]),
              static_cast<long long>(Secret[1]));

  unsigned IntervalAnswered = runService<Box>(M, "interval", 1, Secret);
  unsigned PowersetAnswered =
      runService<PowerBox>(M, "powerset k=4", 4, Secret);

  std::printf("summary: interval answered %u, powerset answered %u — the\n"
              "powerset tracks the carved-out weeks exactly, so it stays\n"
              "permissive for longer (the Fig. 6 effect on B1's domain).\n",
              IntervalAnswered, PowersetAnswered);
  return 0;
}
