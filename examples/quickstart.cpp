//===- examples/quickstart.cpp - ANOSY in five minutes --------------------===//
//
// The §2 running example end to end:
//   1. declare a secret type and a query in the query DSL,
//   2. let the session synthesize verified knowledge approximations
//      (the paper's compile-time plugin step),
//   3. downgrade queries under a quantitative policy and watch the
//      tracked attacker knowledge shrink until the policy says stop.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/AnosySession.h"
#include "expr/Parser.h"

#include <cstdio>

using namespace anosy;

int main() {
  // Step 1: the secret type and queries (§2.1's UserLoc and nearby).
  const char *Source = R"(
    secret UserLoc { x: int[0, 400], y: int[0, 400] }
    def nearby(ox: int, oy: int): bool = abs(x - ox) + abs(y - oy) <= 100
    query nearby200 = nearby(200, 200)
    query nearby300 = nearby(300, 200)
    query nearby400 = nearby(400, 200)
  )";
  auto M = parseModule(Source);
  if (!M) {
    std::fprintf(stderr, "%s\n", M.error().str().c_str());
    return 1;
  }

  // Step 2: create a session. This synthesizes under-approximate ind.
  // sets for every query and machine-checks them against the Fig. 4
  // refinement specs before anything runs.
  std::printf("== synthesizing and verifying knowledge approximations ==\n");
  auto Session = AnosySession<Box>::create(
      M.takeValue(), minSizePolicy<Box>(100)); // §2.1's qpolicy
  if (!Session) {
    std::fprintf(stderr, "%s\n", Session.error().str().c_str());
    return 1;
  }
  for (const char *Name : {"nearby200", "nearby300", "nearby400"}) {
    const QueryArtifacts<Box> *Art = Session->artifacts(Name);
    std::printf("\n--- synthesized artifact for %s ---\n%s\n", Name,
                Art->SynthesizedSource.c_str());
    std::printf("certificates:\n%s", Art->Certificates.str().c_str());
  }

  // Step 3: the §3 downgrade trace with the secret at (300, 200).
  Point Secret{300, 200};
  std::printf("\n== bounded downgrades (secret = (300, 200)) ==\n");
  for (const char *Name : {"nearby200", "nearby300", "nearby400"}) {
    auto R = Session->downgrade(Secret, Name);
    if (!R) {
      std::printf("downgrade %-10s -> %s\n", Name,
                  R.error().str().c_str());
      continue;
    }
    Box K = Session->tracker().knowledgeFor(Secret);
    std::printf("downgrade %-10s -> %-5s  knowledge now %s (%s secrets)\n",
                Name, *R ? "true" : "false", K.str().c_str(),
                K.volume().str().c_str());
  }
  std::printf("\nThe third query was refused: its posterior would leave "
              "the attacker\nfewer than 100 candidate locations.\n");
  return 0;
}
