//===- examples/anosy_cli.cpp - The ANOSY compiler driver -----------------===//
//
// The command-line face of the pipeline — what the paper's GHC plugin
// does to a Haskell module, as a standalone tool over query-DSL files:
//
//   anosy_cli <file.anosy> [--domain interval|powerset] [--k N]
//             [--kind under|over] [--objective volume|balanced|pareto]
//             [--emit-smtlib] [--no-verify] [--export <kb-file>]
//             [--threads N]
//
// For each query in the module it prints the refinement-type spec, the
// sketch, the synthesized (hole-filled) program, the verification
// certificates, and optionally the SMT-LIB constraint system SYNTH
// solved. `classify` declarations get one ind. set per feasible output
// (§5.1 extension). --export writes the verified under-approximations to
// a knowledge base loadable without re-synthesis (core/ArtifactIO.h).
// With no file argument it runs on the built-in §2 module.
//
//===----------------------------------------------------------------------===//

#include "core/ArtifactIO.h"
#include "expr/Parser.h"
#include "expr/SmtLib.h"
#include "support/Stats.h"
#include "synth/ClassifierSynth.h"
#include "synth/Synthesizer.h"
#include "verify/RefinementChecker.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

using namespace anosy;

namespace {

struct CliOptions {
  std::string Path;
  bool Powerset = false;
  unsigned K = 3;
  ApproxKind Kind = ApproxKind::Under;
  GrowObjective Objective = GrowObjective::Balanced;
  bool EmitSmtLib = false;
  bool Verify = true;
  std::string ExportPath;
  /// Solver threads; 1 (default) is the serial engine, 0 means hardware
  /// concurrency. Synthesized artifacts are identical for every value.
  unsigned Threads = 1;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [file.anosy] [--domain interval|powerset] [--k N]\n"
      "          [--kind under|over] [--objective volume|balanced|pareto]\n"
      "          [--emit-smtlib] [--no-verify] [--export <kb-file>]\n"
      "          [--threads N]   (0 = all cores; results are identical\n"
      "                          for every thread count)\n",
      Argv0);
  return 2;
}

const char *builtinModule() {
  return R"(secret UserLoc { x: int[0, 400], y: int[0, 400] }
def nearby(ox: int, oy: int): bool = abs(x - ox) + abs(y - oy) <= 100
query nearby200 = nearby(200, 200)
)";
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--domain") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.Powerset = std::strcmp(V, "powerset") == 0;
    } else if (Arg == "--k") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.K = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--kind") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.Kind =
          std::strcmp(V, "over") == 0 ? ApproxKind::Over : ApproxKind::Under;
    } else if (Arg == "--objective") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      if (std::strcmp(V, "volume") == 0)
        Opt.Objective = GrowObjective::Volume;
      else if (std::strcmp(V, "pareto") == 0)
        Opt.Objective = GrowObjective::ParetoWidth;
      else
        Opt.Objective = GrowObjective::Balanced;
    } else if (Arg == "--export") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.ExportPath = V;
    } else if (Arg == "--threads") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Opt.Threads = static_cast<unsigned>(std::atoi(Arg.c_str() + 10));
    } else if (Arg == "--emit-smtlib") {
      Opt.EmitSmtLib = true;
    } else if (Arg == "--no-verify") {
      Opt.Verify = false;
    } else if (Arg == "--help" || Arg == "-h") {
      return usage(Argv[0]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Opt.Path = Arg;
    }
  }

  std::string Source;
  if (Opt.Path.empty()) {
    Source = builtinModule();
    std::printf("(no input file: using the built-in §2 module)\n\n");
  } else {
    std::ifstream In(Opt.Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Opt.Path.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  auto M = parseModule(Source);
  if (!M) {
    std::fprintf(stderr, "%s\n", M.error().str().c_str());
    return 1;
  }
  const Schema &S = M->schema();
  std::printf("secret schema: %s  (%s possible secrets)\n\n",
              S.str().c_str(), S.totalSize().sci().c_str());

  SynthOptions SOpt;
  SOpt.Objective = Opt.Objective;
  Parallelism Par{Opt.Threads};
  std::unique_ptr<ThreadPool> Pool;
  if (!Par.serial()) {
    Pool = std::make_unique<ThreadPool>(Par);
    SOpt.Par.Pool = Pool.get();
    std::printf("(running synthesis and verification on %u threads)\n\n",
                Pool->threadCount());
  }
  for (const QueryDef &Q : M->queries()) {
    std::printf("=== query %s ===\n", Q.Name.c_str());
    std::printf("    %s\n\n", Q.Body->str(S).c_str());

    if (Opt.EmitSmtLib) {
      std::printf("--- SYNTH constraints (SMT-LIB2, True hole) ---\n%s\n",
                  toSynthConstraintScript(*Q.Body, S, /*Polarity=*/true,
                                          Opt.Kind == ApproxKind::Under)
                      .c_str());
    }

    auto Sy = Synthesizer::create(S, Q.Body, SOpt);
    if (!Sy) {
      std::printf("rejected: %s\n\n", Sy.error().str().c_str());
      continue;
    }
    IndSetSketch Sketch(Q.Name, S, Opt.Kind);
    std::printf("--- sketch ---\n%s\n\n", Sketch.renderTemplate().c_str());

    Stopwatch W;
    SynthStats Stats;
    std::string Filled;
    CertificateBundle Certs;
    if (Opt.Powerset) {
      auto Sets = Sy->synthesizePowerset(Opt.Kind, Opt.K, &Stats);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      Filled = Sketch.renderFilled(Sets->TrueSet, Sets->FalseSet);
      if (Opt.Verify)
        Certs = RefinementChecker(S, Q.Body, SOpt.MaxSolverNodes, SOpt.Par)
                    .checkIndSets(*Sets, Opt.Kind);
    } else {
      auto Sets = Sy->synthesizeInterval(Opt.Kind, &Stats);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      Filled = Sketch.renderFilled(Sets->TrueSet, Sets->FalseSet);
      if (Opt.Verify)
        Certs = RefinementChecker(S, Q.Body, SOpt.MaxSolverNodes, SOpt.Par)
                    .checkIndSets(*Sets, Opt.Kind);
    }
    double Secs = W.seconds();

    std::printf("--- synthesized (%s, %s domain%s) in %.3fs, "
                "%llu solver nodes ---\n%s\n\n",
                approxKindName(Opt.Kind),
                Opt.Powerset ? "powerset" : "interval",
                Opt.Powerset ? (", k=" + std::to_string(Opt.K)).c_str() : "",
                Secs, static_cast<unsigned long long>(Stats.SolverNodes),
                Filled.c_str());
    if (Opt.Verify) {
      std::printf("--- verification ---\n%s\n", Certs.str().c_str());
      if (!Certs.valid())
        return 1;
    }
  }

  // §5.1 extension: classifiers get one ind. set per feasible output.
  for (const ClassifierDef &C : M->classifiers()) {
    std::printf("=== classifier %s ===\n    %s\n\n", C.Name.c_str(),
                C.Body->str(S).c_str());
    auto Cs = ClassifierSynthesizer::create(S, C.Body, SOpt);
    if (!Cs) {
      std::printf("rejected: %s\n\n", Cs.error().str().c_str());
      continue;
    }
    Stopwatch W;
    if (Opt.Powerset) {
      auto Sets = Cs->synthesizePowerset(Opt.Kind, Opt.K);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      for (const OutputIndSet<PowerBox> &O : *Sets)
        std::printf("  output %lld: %s\n", static_cast<long long>(O.Value),
                    O.Set.str().c_str());
    } else {
      auto Sets = Cs->synthesizeInterval(Opt.Kind);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      for (const OutputIndSet<Box> &O : *Sets)
        std::printf("  output %lld: %s\n", static_cast<long long>(O.Value),
                    O.Set.str().c_str());
    }
    std::printf("  (synthesized in %.3fs)\n\n", W.seconds());
  }

  // Export the under-approximation knowledge base for deployment.
  if (!Opt.ExportPath.empty()) {
    if (Opt.Kind != ApproxKind::Under) {
      std::fprintf(stderr, "--export stores enforcement (under) "
                           "artifacts; rerun with --kind under\n");
      return 1;
    }
    std::string Text;
    if (Opt.Powerset) {
      std::vector<QueryInfo<PowerBox>> Infos;
      for (const QueryDef &Q : M->queries()) {
        auto Sy = Synthesizer::create(S, Q.Body, SOpt);
        auto Sets = Sy->synthesizePowerset(ApproxKind::Under, Opt.K);
        if (!Sets) {
          std::fprintf(stderr, "%s\n", Sets.error().str().c_str());
          return 1;
        }
        Infos.push_back({Q.Name, Q.Body, Sets.takeValue(),
                         ApproxKind::Under});
      }
      Text = serializeKnowledgeBase(S, Infos);
    } else {
      std::vector<QueryInfo<Box>> Infos;
      for (const QueryDef &Q : M->queries()) {
        auto Sy = Synthesizer::create(S, Q.Body, SOpt);
        auto Sets = Sy->synthesizeInterval(ApproxKind::Under);
        if (!Sets) {
          std::fprintf(stderr, "%s\n", Sets.error().str().c_str());
          return 1;
        }
        Infos.push_back({Q.Name, Q.Body, Sets.takeValue(),
                         ApproxKind::Under});
      }
      Text = serializeKnowledgeBase(S, Infos);
    }
    std::ofstream Out(Opt.ExportPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   Opt.ExportPath.c_str());
      return 1;
    }
    Out << Text;
    std::printf("exported knowledge base to %s (%zu bytes)\n",
                Opt.ExportPath.c_str(), Text.size());
  }
  return 0;
}
