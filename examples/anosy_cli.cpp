//===- examples/anosy_cli.cpp - The ANOSY compiler driver -----------------===//
//
// The command-line face of the pipeline — what the paper's GHC plugin
// does to a Haskell module, as a standalone tool over query-DSL files:
//
//   anosy_cli <file.anosy> [--domain interval|powerset] [--k N]
//             [--kind under|over] [--objective volume|balanced|pareto]
//             [--emit-smtlib] [--no-verify] [--export <kb-file>]
//             [--threads N] [--timeout-ms N] [--max-session-nodes N]
//             [--retry N] [--fault-inject SPEC]
//             [--min-size N] [--static-admission] [--analysis-seeds]
//             [--trace-out FILE] [--metrics-out FILE] [--probe-monitor]
//   anosy_cli lint [files.anosy...] [--json] [--min-size N]
//             [--relational off|auto|on] [--threads N]
//
// For each query in the module it prints the refinement-type spec, the
// sketch, the synthesized (hole-filled) program, the verification
// certificates, and optionally the SMT-LIB constraint system SYNTH
// solved. `classify` declarations get one ind. set per feasible output
// (§5.1 extension). --export writes the verified under-approximations to
// a v2 (checksummed) knowledge base, atomically, loadable without
// re-synthesis (core/ArtifactIO.h). With no file argument it runs on the
// built-in §2 module.
//
// Failure domains (DESIGN.md §6): --timeout-ms arms a wall-clock
// deadline, --max-session-nodes a cumulative solver-node cap, --retry N
// retries exhausted queries with a 4x budget before degrading. Under
// those flags the tool degrades per query — ⊥ artifacts and a printed
// degradation note — instead of aborting. --fault-inject (or the
// ANOSY_FAULT_INJECT environment variable) arms the deterministic fault
// harness, e.g. "seed=7,solver-charge@100,kb-write@1x2".
//
// Static analysis (DESIGN.md §7): `anosy_cli lint` runs the leakage
// analyzer over query modules without touching a solver — per query, the
// interval posteriors of both responses, plus admission verdicts
// (policy-unsatisfiable, constant-answer, relational-hotspot,
// session-budget-risk). --json emits a machine-readable report; the exit
// status is 1 when any error-severity diagnostic fires. The policy
// threshold comes from --min-size or an `# anosy-lint: min-size=N`
// pragma in the module. In the pipeline, --min-size N enforces a
// minimum-size policy, --static-admission rejects policy-unsatisfiable
// queries before synthesis (zero solver nodes), and --analysis-seeds
// seeds synthesis searches with the analyzer's posteriors.
//
// Observability (DESIGN.md §8): --trace-out FILE records the run's phase
// spans (parse → lint → synthesis → verify → monitor → KB write) as
// Chrome trace_event JSON, loadable in chrome://tracing; --metrics-out
// FILE dumps the counters/gauges/histograms in the Prometheus text
// format. Either flag flips the obs runtime switch on and routes the run
// through the session facade. --trace-out implies --probe-monitor: one
// downgrade per query/classifier at the schema-center secret, so the
// trace covers the monitor-decision phase too. Numeric flag values are
// parsed strictly (support/ParseNum.h): non-numeric or out-of-range
// tokens are usage errors (exit 2), not silently-zero configurations.
//
//===----------------------------------------------------------------------===//

#include "analysis/LeakageAnalyzer.h"
#include "analysis/LintReport.h"
#include "compile/CompiledEval.h"
#include "core/AnosySession.h"
#include "core/ArtifactIO.h"
#include "expr/Parser.h"
#include "expr/SmtLib.h"
#include "obs/Instrument.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include "support/ParseNum.h"
#include "support/Stats.h"
#include "synth/ClassifierSynth.h"
#include "synth/Synthesizer.h"
#include "verify/RefinementChecker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace anosy;

namespace {

struct CliOptions {
  std::string Path;
  bool Powerset = false;
  unsigned K = 3;
  ApproxKind Kind = ApproxKind::Under;
  GrowObjective Objective = GrowObjective::Balanced;
  bool EmitSmtLib = false;
  bool Verify = true;
  std::string ExportPath;
  /// Solver threads; 1 (default) is the serial engine, 0 means hardware
  /// concurrency. Synthesized artifacts are identical for every value.
  unsigned Threads = 1;
  /// Degradation knobs (0 = unlimited / single attempt).
  uint64_t TimeoutMs = 0;
  uint64_t MaxSessionNodes = 0;
  unsigned Retry = 1;
  std::string FaultSpec;
  /// Minimum-size policy threshold; -1 keeps the permissive policy.
  int64_t MinSize = -1;
  /// Static admission / search seeding (DESIGN.md §7).
  bool StaticAdmission = false;
  bool AnalysisSeeds = false;
  /// Observability outputs (DESIGN.md §8); either one enables the obs
  /// runtime switch and forces the session path.
  std::string TraceOut;
  std::string MetricsOut;
  /// One downgrade per query/classifier at the schema-center secret, so a
  /// traced run covers the monitor-decision phase. Implied by --trace-out.
  bool ProbeMonitor = false;

  bool degradable() const {
    return TimeoutMs != 0 || MaxSessionNodes != 0 || Retry > 1;
  }

  bool needsSession() const {
    return degradable() || !ExportPath.empty() || StaticAdmission ||
           AnalysisSeeds || MinSize >= 0 || !TraceOut.empty() ||
           !MetricsOut.empty() || ProbeMonitor;
  }
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [file.anosy] [--domain interval|powerset] [--k N]\n"
      "          [--kind under|over] [--objective volume|balanced|pareto]\n"
      "          [--emit-smtlib] [--no-verify] [--export <kb-file>]\n"
      "          [--threads N]   (0 = all cores; results are identical\n"
      "                          for every thread count)\n"
      "          [--timeout-ms N] [--max-session-nodes N] [--retry N]\n"
      "          [--fault-inject seed=S,<site>@<one-in>[x<max>],...]\n"
      "          [--min-size N] [--static-admission] [--analysis-seeds]\n"
      "          [--trace-out FILE]   (Chrome trace_event JSON; implies\n"
      "                              --probe-monitor)\n"
      "          [--metrics-out FILE] (Prometheus text exposition)\n"
      "          [--compiled-eval off|on|auto] (tape-compiled interval\n"
      "                          evaluation; default auto; results are\n"
      "                          identical in every mode)\n"
      "          [--probe-monitor]    (one downgrade per query at the\n"
      "                              schema-center secret)\n"
      "   or: %s lint [files.anosy...] [--json] [--min-size N]\n"
      "          [--relational off|auto|on] (octagon escalation tier;\n"
      "                          default auto)\n"
      "          [--threads N]   (lint output is identical for every\n"
      "                          thread count)\n",
      Argv0, Argv0);
  return 2;
}

/// Strict numeric flag parsing (support/ParseNum.h). The old atoi/strtoll
/// calls read `--threads 1O` as 1 and `--k abc` as 0 — silently wrong
/// configurations. A bad value now names the flag and the offending text
/// and exits with the usage status.
[[noreturn]] void badFlagValue(const char *Flag, const char *Value) {
  std::fprintf(stderr, "error: invalid value for %s: '%s'\n", Flag, Value);
  std::exit(2);
}

unsigned parseUnsignedFlag(const char *Flag, const char *Value) {
  auto V = parseUnsigned(Value);
  if (!V)
    badFlagValue(Flag, Value);
  return *V;
}

uint64_t parseUint64Flag(const char *Flag, const char *Value) {
  auto V = parseUint64(Value);
  if (!V)
    badFlagValue(Flag, Value);
  return *V;
}

int64_t parseInt64Flag(const char *Flag, const char *Value) {
  auto V = parseInt64(Value);
  if (!V)
    badFlagValue(Flag, Value);
  return *V;
}

const char *builtinModule() {
  return R"(secret UserLoc { x: int[0, 400], y: int[0, 400] }
def nearby(ox: int, oy: int): bool = abs(x - ox) + abs(y - oy) <= 100
query nearby200 = nearby(200, 200)
)";
}

/// `anosy_cli lint`: the solver-free static leakage analyzer over one or
/// more modules (the built-in §2 module with no files). Exit status 1
/// when any error-severity diagnostic fires, 2 on bad usage, and 1 on
/// unreadable/unparsable inputs.
int runLint(int Argc, char **Argv) {
  std::vector<std::string> Files;
  bool Json = false;
  int64_t MinSize = -1;
  RelationalTier Relational = RelationalTier::Auto;
  auto ParseRelational = [&](const char *V) -> bool {
    auto T = parseRelationalTier(V);
    if (!T) {
      std::fprintf(stderr, "bad --relational value '%s' (off|auto|on)\n", V);
      return false;
    }
    Relational = *T;
    return true;
  };
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--min-size") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      MinSize = parseInt64Flag("--min-size", V);
    } else if (Arg == "--relational") {
      const char *V = Next();
      if (!V || !ParseRelational(V))
        return usage(Argv[0]);
    } else if (Arg.rfind("--relational=", 0) == 0) {
      if (!ParseRelational(Arg.c_str() + 13))
        return usage(Argv[0]);
    } else if (Arg == "--threads") {
      // Accepted for interface symmetry with the pipeline: the analyzer
      // is pure interval arithmetic, so verdicts are identical (and
      // byte-identical in both renderings) for every thread count. The
      // value is still validated — garbage is an error, not a no-op.
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      (void)parseUnsignedFlag("--threads", V);
    } else if (Arg.rfind("--threads=", 0) == 0) {
      // Same: accepted and validated, no effect on output.
      (void)parseUnsignedFlag("--threads", Arg.c_str() + 10);
    } else if (Arg == "--help" || Arg == "-h") {
      return usage(Argv[0]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown lint flag %s\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Files.push_back(Arg);
    }
  }

  std::vector<LintedModule> Mods;
  auto LintOne = [&](const std::string &Name,
                     const std::string &Source) -> bool {
    auto M = parseModule(Source);
    if (!M) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(),
                   M.error().str().c_str());
      return false;
    }
    LintOptions Base;
    Base.MinSize = MinSize;
    Base.Relational = Relational;
    // `# anosy-lint: min-size=N` / `relational=...` pragmas in the
    // module win over the command line: the module author knows the
    // deployment policy.
    LintOptions LOpt = lintOptionsForSource(Source, Base);
    Mods.push_back({Name, LOpt, analyzeModule(*M, LOpt)});
    return true;
  };

  if (Files.empty()) {
    if (!LintOne("<builtin>", builtinModule()))
      return 1;
  } else {
    for (const std::string &Path : Files) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      // Report under the file's base name so output is stable no matter
      // where the module tree is checked out.
      size_t Slash = Path.find_last_of('/');
      std::string Name =
          Slash == std::string::npos ? Path : Path.substr(Slash + 1);
      if (!LintOne(Name, Buf.str()))
        return 1;
    }
  }

  std::string Out = Json ? renderLintJson(Mods) : renderLintText(Mods);
  std::fputs(Out.c_str(), stdout);
  for (const LintedModule &LM : Mods)
    if (LM.Analysis.hasErrors())
      return 1;
  return 0;
}

/// The degradation-aware pipeline (DESIGN.md §6): one AnosySession under
/// the requested budgets; exhausted queries degrade (partial or ⊥
/// artifacts, with a printed note) instead of aborting the run. Also the
/// path every --export takes: the session's verified artifacts are
/// written as a checksummed v2 knowledge base, atomically.
template <AbstractDomain D>
int sessionRun(const Module &M, const CliOptions &Opt,
               const SynthOptions &SOpt) {
  SessionOptions SO;
  SO.PowersetSize = Opt.K;
  SO.Synth = SOpt;
  SO.Verify = Opt.Verify;
  SO.MaxSessionNodes = Opt.MaxSessionNodes;
  SO.DeadlineMs = Opt.TimeoutMs;
  SO.Retry.MaxAttempts = Opt.Retry;
  SO.StaticAdmission = Opt.StaticAdmission;
  SO.UseAnalysisSeeds = Opt.AnalysisSeeds;

  KnowledgePolicy<D> Policy = Opt.MinSize >= 0
                                  ? minSizePolicy<D>(Opt.MinSize)
                                  : permissivePolicy<D>();
  auto S = AnosySession<D>::create(M, std::move(Policy), SO);
  if (!S) {
    std::fprintf(stderr, "session failed: %s\n", S.error().str().c_str());
    return 1;
  }

  if ((SO.StaticAdmission || SO.UseAnalysisSeeds) &&
      !S->analysis().Diagnostics.empty()) {
    std::printf("--- static analysis ---\n");
    for (const LintDiagnostic &Diag : S->analysis().Diagnostics)
      std::printf("%s\n", Diag.str().c_str());
    std::printf("\n");
  }

  for (const QueryDef &Q : M.queries()) {
    std::printf("=== query %s ===\n", Q.Name.c_str());
    std::printf("    %s\n\n", Q.Body->str(M.schema()).c_str());
    if (Opt.EmitSmtLib)
      std::printf("--- SYNTH constraints (SMT-LIB2, True hole) ---\n%s\n",
                  toSynthConstraintScript(*Q.Body, M.schema(),
                                          /*Polarity=*/true, /*Under=*/true)
                      .c_str());
    const QueryArtifacts<D> *Art = S->artifacts(Q.Name);
    if (Art == nullptr)
      continue;
    std::printf("--- synthesized (under, %u attempt%s, %llu solver "
                "nodes) ---\n%s\n",
                Art->Attempts, Art->Attempts == 1 ? "" : "s",
                static_cast<unsigned long long>(Art->Stats.SolverNodes),
                Art->SynthesizedSource.c_str());
    if (Art->Degradation)
      std::printf("!!! degraded: %s\n", Art->Degradation->str().c_str());
    if (Opt.Verify)
      std::printf("--- verification ---\n%s\n",
                  Art->Certificates.str().c_str());
    std::printf("\n");
  }

  for (const ClassifierDef &C : M.classifiers()) {
    std::printf("=== classifier %s ===\n    %s\n\n", C.Name.c_str(),
                C.Body->str(M.schema()).c_str());
    const ClassifierInfo<D> *Info = S->tracker().classifierInfo(C.Name);
    if (Info == nullptr)
      continue;
    if (Info->Ind.empty())
      std::printf("  (degraded: no verified output sets; downgrades on "
                  "this classifier will be refused)\n");
    for (const OutputIndSet<D> &O : Info->Ind)
      std::printf("  output %lld: %s\n", static_cast<long long>(O.Value),
                  O.Set.str().c_str());
    std::printf("\n");
  }

  if (Opt.ProbeMonitor) {
    // One bounded downgrade per query and classifier against the
    // schema-center secret: a traced run then exercises the monitor
    // decision (admit or refuse) without a separate driver. Probes mutate
    // only this session's in-memory knowledge map — the knowledge base
    // exported below is derived from the verified artifacts, not from
    // tracked secrets.
    Point Secret = Box::top(M.schema()).center();
    std::printf("--- monitor probes (secret = schema center) ---\n");
    // A refusal backed by a ⊥ fallback is reported with its
    // machine-readable reason code (deadline/budget/statically-rejected/
    // ...), so drivers can tell "policy refused" from "artifact degraded"
    // without parsing prose.
    auto RefusalNote = [&](const std::string &Name) {
      const QueryDegradation *QD = S->degradation().find(Name);
      return QD != nullptr && QD->FellBack
                 ? std::string(" bottom [code=") + reasonCodeName(QD->code()) +
                       "]"
                 : std::string();
    };
    for (const QueryDef &Q : M.queries()) {
      auto R = S->downgrade(Secret, Q.Name);
      if (R)
        std::printf("  %s -> %s\n", Q.Name.c_str(), *R ? "true" : "false");
      else
        std::printf("  %s -> refused%s (%s)\n", Q.Name.c_str(),
                    RefusalNote(Q.Name).c_str(), R.error().str().c_str());
    }
    for (const ClassifierDef &C : M.classifiers()) {
      auto R = S->downgradeClassifier(Secret, C.Name);
      if (R)
        std::printf("  %s -> %lld\n", C.Name.c_str(),
                    static_cast<long long>(*R));
      else
        std::printf("  %s -> refused%s (%s)\n", C.Name.c_str(),
                    RefusalNote(C.Name).c_str(), R.error().str().c_str());
    }
    std::printf("\n");
  }

  const SessionStats &St = S->stats();
  std::printf("session: %llu solver nodes, %.3fs synthesis, "
              "%u attempts, %u degraded\n",
              static_cast<unsigned long long>(St.SolverNodes),
              St.SynthSeconds, St.Attempts, St.DegradedQueries);
  if (S->degradation().degraded())
    std::printf("degradation report:\n%s", S->degradation().str().c_str());

  if (!Opt.ExportPath.empty()) {
    std::string Text = S->exportKnowledgeBase();
    auto W = writeKnowledgeBaseFileAtomic(Opt.ExportPath, Text);
    if (!W) {
      std::fprintf(stderr, "export failed: %s\n", W.error().str().c_str());
      return 1;
    }
    std::printf("exported knowledge base to %s (%zu bytes, v2, atomic)\n",
                Opt.ExportPath.c_str(), Text.size());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "lint") == 0)
    return runLint(Argc, Argv);

  CliOptions Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--domain") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.Powerset = std::strcmp(V, "powerset") == 0;
    } else if (Arg == "--k") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.K = parseUnsignedFlag("--k", V);
      // k = 0 boxes is not a smaller powerset, it is no synthesis at all.
      if (Opt.K == 0)
        badFlagValue("--k", V);
    } else if (Arg == "--kind") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.Kind =
          std::strcmp(V, "over") == 0 ? ApproxKind::Over : ApproxKind::Under;
    } else if (Arg == "--objective") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      if (std::strcmp(V, "volume") == 0)
        Opt.Objective = GrowObjective::Volume;
      else if (std::strcmp(V, "pareto") == 0)
        Opt.Objective = GrowObjective::ParetoWidth;
      else
        Opt.Objective = GrowObjective::Balanced;
    } else if (Arg == "--export") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.ExportPath = V;
    } else if (Arg == "--threads") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.Threads = parseUnsignedFlag("--threads", V);
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Opt.Threads = parseUnsignedFlag("--threads", Arg.c_str() + 10);
    } else if (Arg == "--timeout-ms") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.TimeoutMs = parseUint64Flag("--timeout-ms", V);
    } else if (Arg == "--max-session-nodes") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.MaxSessionNodes = parseUint64Flag("--max-session-nodes", V);
    } else if (Arg == "--retry") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.Retry = parseUnsignedFlag("--retry", V);
    } else if (Arg == "--fault-inject") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.FaultSpec = V;
    } else if (Arg == "--min-size") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.MinSize = parseInt64Flag("--min-size", V);
    } else if (Arg == "--compiled-eval") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      CompiledEvalMode M;
      if (!parseCompiledEvalMode(V, M))
        badFlagValue("--compiled-eval", V);
      setCompiledEvalMode(M);
    } else if (Arg.rfind("--compiled-eval=", 0) == 0) {
      const char *V = Arg.c_str() + std::strlen("--compiled-eval=");
      CompiledEvalMode M;
      if (!parseCompiledEvalMode(V, M))
        badFlagValue("--compiled-eval", V);
      setCompiledEvalMode(M);
    } else if (Arg == "--trace-out") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.TraceOut = V;
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      Opt.TraceOut = Arg.substr(std::strlen("--trace-out="));
      if (Opt.TraceOut.empty())
        badFlagValue("--trace-out", "");
    } else if (Arg == "--metrics-out") {
      const char *V = Next();
      if (!V)
        return usage(Argv[0]);
      Opt.MetricsOut = V;
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      Opt.MetricsOut = Arg.substr(std::strlen("--metrics-out="));
      if (Opt.MetricsOut.empty())
        badFlagValue("--metrics-out", "");
    } else if (Arg == "--probe-monitor") {
      Opt.ProbeMonitor = true;
    } else if (Arg == "--static-admission") {
      Opt.StaticAdmission = true;
    } else if (Arg == "--analysis-seeds") {
      Opt.AnalysisSeeds = true;
    } else if (Arg == "--emit-smtlib") {
      Opt.EmitSmtLib = true;
    } else if (Arg == "--no-verify") {
      Opt.Verify = false;
    } else if (Arg == "--help" || Arg == "-h") {
      return usage(Argv[0]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Opt.Path = Arg;
    }
  }

  // A traced session should show the full span taxonomy, monitor decision
  // included, so --trace-out implies --probe-monitor. The runtime switch
  // flips before parsing so the parse span lands in the trace too.
  if (!Opt.TraceOut.empty())
    Opt.ProbeMonitor = true;
  if (!Opt.TraceOut.empty() || !Opt.MetricsOut.empty())
    obs::setEnabled(true);

  // Fault harness: the environment arms it first, an explicit flag wins.
  if (auto E = faults::initFromEnv(); !E) {
    std::fprintf(stderr, "ANOSY_FAULT_INJECT: %s\n", E.error().str().c_str());
    return 2;
  }
  if (!Opt.FaultSpec.empty()) {
    auto C = faults::parseSpec(Opt.FaultSpec);
    if (!C) {
      std::fprintf(stderr, "--fault-inject: %s\n", C.error().str().c_str());
      return 2;
    }
    faults::configure(*C);
  }
  if (faults::armed())
    std::printf("(fault injection armed)\n\n");

  std::string Source;
  if (Opt.Path.empty()) {
    Source = builtinModule();
    std::printf("(no input file: using the built-in §2 module)\n\n");
  } else {
    std::ifstream In(Opt.Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Opt.Path.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  ANOSY_OBS_SPAN(ParseSpan, "anosy.parse.module");
  ANOSY_OBS_SPAN_ARG(ParseSpan, "bytes", Source.size());
  auto M = parseModule(Source);
  if (!M) {
    std::fprintf(stderr, "%s\n", M.error().str().c_str());
    return 1;
  }
  ANOSY_OBS_SPAN_ARG(ParseSpan, "queries", M->queries().size());
  ANOSY_OBS_SPAN_ARG(ParseSpan, "classifiers", M->classifiers().size());
  ParseSpan.end();
  const Schema &S = M->schema();
  std::printf("secret schema: %s  (%s possible secrets)\n\n",
              S.str().c_str(), S.totalSize().sci().c_str());

  SynthOptions SOpt;
  SOpt.Objective = Opt.Objective;
  Parallelism Par{Opt.Threads};
  std::unique_ptr<ThreadPool> Pool;
  if (!Par.serial()) {
    Pool = std::make_unique<ThreadPool>(Par);
    SOpt.Par.Pool = Pool.get();
    std::printf("(running synthesis and verification on %u threads)\n\n",
                Pool->threadCount());
  }

  // Budgeted runs, exports, policies, and static admission go through the
  // session facade: graceful degradation, retries, the crash-safe v2
  // knowledge-base writer, and the pre-synthesis leakage analyzer.
  if (Opt.needsSession()) {
    if (Opt.Kind != ApproxKind::Under) {
      std::fprintf(stderr, "--timeout-ms/--max-session-nodes/--retry/"
                           "--export/--min-size/--static-admission/"
                           "--analysis-seeds/--trace-out/--metrics-out/"
                           "--probe-monitor drive enforcement (under) "
                           "artifacts; rerun with --kind under\n");
      return 1;
    }
    int RC = Opt.Powerset ? sessionRun<PowerBox>(*M, Opt, SOpt)
                          : sessionRun<Box>(*M, Opt, SOpt);
    // Re-publish after the whole run so the anosy_pool_* gauges reflect
    // verification and probe work, not just session creation.
    if (Pool != nullptr)
      publishPoolStats(Pool->stats());
    if (!Opt.TraceOut.empty()) {
      auto W = obs::TraceRecorder::global().writeFile(Opt.TraceOut);
      if (!W) {
        std::fprintf(stderr, "--trace-out: %s\n", W.error().str().c_str());
        return 1;
      }
      std::printf("wrote %zu trace events to %s\n",
                  obs::TraceRecorder::global().eventCount(),
                  Opt.TraceOut.c_str());
    }
    if (!Opt.MetricsOut.empty()) {
      auto W = obs::MetricsRegistry::global().writeFile(Opt.MetricsOut);
      if (!W) {
        std::fprintf(stderr, "--metrics-out: %s\n", W.error().str().c_str());
        return 1;
      }
      std::printf("wrote metrics to %s\n", Opt.MetricsOut.c_str());
    }
    return RC;
  }

  for (const QueryDef &Q : M->queries()) {
    std::printf("=== query %s ===\n", Q.Name.c_str());
    std::printf("    %s\n\n", Q.Body->str(S).c_str());

    if (Opt.EmitSmtLib) {
      std::printf("--- SYNTH constraints (SMT-LIB2, True hole) ---\n%s\n",
                  toSynthConstraintScript(*Q.Body, S, /*Polarity=*/true,
                                          Opt.Kind == ApproxKind::Under)
                      .c_str());
    }

    auto Sy = Synthesizer::create(S, Q.Body, SOpt);
    if (!Sy) {
      std::printf("rejected: %s\n\n", Sy.error().str().c_str());
      continue;
    }
    IndSetSketch Sketch(Q.Name, S, Opt.Kind);
    std::printf("--- sketch ---\n%s\n\n", Sketch.renderTemplate().c_str());

    Stopwatch W;
    SynthStats Stats;
    std::string Filled;
    CertificateBundle Certs;
    if (Opt.Powerset) {
      auto Sets = Sy->synthesizePowerset(Opt.Kind, Opt.K, &Stats);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      Filled = Sketch.renderFilled(Sets->TrueSet, Sets->FalseSet);
      if (Opt.Verify)
        Certs = RefinementChecker(S, Q.Body, SOpt.MaxSolverNodes, SOpt.Par)
                    .checkIndSets(*Sets, Opt.Kind);
    } else {
      auto Sets = Sy->synthesizeInterval(Opt.Kind, &Stats);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      Filled = Sketch.renderFilled(Sets->TrueSet, Sets->FalseSet);
      if (Opt.Verify)
        Certs = RefinementChecker(S, Q.Body, SOpt.MaxSolverNodes, SOpt.Par)
                    .checkIndSets(*Sets, Opt.Kind);
    }
    double Secs = W.seconds();

    std::printf("--- synthesized (%s, %s domain%s) in %.3fs, "
                "%llu solver nodes ---\n%s\n\n",
                approxKindName(Opt.Kind),
                Opt.Powerset ? "powerset" : "interval",
                Opt.Powerset ? (", k=" + std::to_string(Opt.K)).c_str() : "",
                Secs, static_cast<unsigned long long>(Stats.SolverNodes),
                Filled.c_str());
    if (Opt.Verify) {
      std::printf("--- verification ---\n%s\n", Certs.str().c_str());
      if (!Certs.valid())
        return 1;
    }
  }

  // §5.1 extension: classifiers get one ind. set per feasible output.
  for (const ClassifierDef &C : M->classifiers()) {
    std::printf("=== classifier %s ===\n    %s\n\n", C.Name.c_str(),
                C.Body->str(S).c_str());
    auto Cs = ClassifierSynthesizer::create(S, C.Body, SOpt);
    if (!Cs) {
      std::printf("rejected: %s\n\n", Cs.error().str().c_str());
      continue;
    }
    Stopwatch W;
    if (Opt.Powerset) {
      auto Sets = Cs->synthesizePowerset(Opt.Kind, Opt.K);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      for (const OutputIndSet<PowerBox> &O : *Sets)
        std::printf("  output %lld: %s\n", static_cast<long long>(O.Value),
                    O.Set.str().c_str());
    } else {
      auto Sets = Cs->synthesizeInterval(Opt.Kind);
      if (!Sets) {
        std::printf("synthesis failed: %s\n\n", Sets.error().str().c_str());
        continue;
      }
      for (const OutputIndSet<Box> &O : *Sets)
        std::printf("  output %lld: %s\n", static_cast<long long>(O.Value),
                    O.Set.str().c_str());
    }
    std::printf("  (synthesized in %.3fs)\n\n", W.seconds());
  }

  return 0;
}
