//===- examples/location_ads.cpp - The §6.2 secure advertising system -----===//
//
// A restaurant chain wants to show ads to nearby users without ever
// learning a user's location more precisely than "one of >100 places".
// The app stacks the full architecture of the paper:
//
//   SecureContext (LIO-like IFC substrate)
//     └─ AnosyT (knowledge tracking + quantitative policy)
//          └─ downgrade(nearby restaurant_i) per branch
//
// Each user is served until the policy detects that one more answer
// would narrow their location too far; the raw location itself can never
// be written to the ad channel thanks to the IFC labels.
//
// Build & run:  ./build/examples/location_ads
//
//===----------------------------------------------------------------------===//

#include "benchlib/Advertising.h"
#include "core/AnosyT.h"
#include "support/Rng.h"

#include <cstdio>

using namespace anosy;

int main() {
  AdvertisingConfig Config;
  Config.NumRestaurants = 20;
  Config.PowersetSize = 4;
  Config.Seed = 42;

  std::printf("building the advertising module: %u restaurant branches "
              "in a %lldx%lld grid\n",
              Config.NumRestaurants,
              static_cast<long long>(Config.SpaceHi),
              static_cast<long long>(Config.SpaceHi));
  Module M = buildAdvertisingModule(Config);

  SessionOptions Options;
  Options.PowersetSize = Config.PowersetSize;
  auto Session = AnosySession<PowerBox>::create(
      M, minSizePolicy<PowerBox>(Config.PolicyMinSize), Options);
  if (!Session) {
    std::fprintf(stderr, "%s\n", Session.error().str().c_str());
    return 1;
  }
  std::printf("synthesized and verified %zu nearby queries "
              "(powerset size k=%u)\n\n",
              M.queries().size(), Config.PowersetSize);

  // One user with a protected location.
  SecureContext<Point, SecurityLevel> Ctx;
  AnosyT<PowerBox, SecurityLevel> Monad(Session->tracker(), Ctx);
  Rng R(7);
  Point Loc{R.range(0, 400), R.range(0, 400)};
  auto Secret =
      Ctx.labelValue(Loc, SecurityLevel(SecurityLevel::Secret));
  if (!Secret) {
    std::fprintf(stderr, "%s\n", Secret.error().str().c_str());
    return 1;
  }
  std::printf("user location (hidden from the ad service): (%lld, %lld)\n\n",
              static_cast<long long>(Loc[0]),
              static_cast<long long>(Loc[1]));

  std::vector<Point> AdChannel; // the public sink
  unsigned AdsShown = 0, Answered = 0;
  for (const QueryDef &Q : M.queries()) {
    auto IsNear = Monad.downgrade(*Secret, Q.Name);
    if (!IsNear) {
      std::printf("%-13s -> %s\n", Q.Name.c_str(),
                  IsNear.error().str().c_str());
      std::printf("\nstopping: answering more branches would identify the "
                  "user among\nfewer than %lld locations.\n",
                  static_cast<long long>(Config.PolicyMinSize));
      break;
    }
    ++Answered;
    BigCount K = Session->tracker()
                     .knowledgeFor(Secret->unprotectTCB())
                     .size();
    std::printf("%-13s -> %-5s  (attacker knowledge: %s candidates)\n",
                Q.Name.c_str(), *IsNear ? "true" : "false",
                K.sci().c_str());
    if (*IsNear) {
      // The boolean is policy-approved public data: emitting it on the
      // public ad channel passes the IFC check.
      auto Out = Ctx.output(SecurityLevel(SecurityLevel::Public),
                            {static_cast<int64_t>(AdsShown), 0},
                            &AdChannel);
      if (Out.ok())
        ++AdsShown;
    }
  }

  std::printf("\nanswered %u branch queries, showed %u ads\n", Answered,
              AdsShown);
  std::printf("declassification audit log: %zu entries\n",
              Ctx.auditLog().size());

  // Demonstrate that the substrate still forbids leaking the raw secret.
  auto Raw = Ctx.unlabel(*Secret);
  if (Raw.ok()) {
    auto Leak = Ctx.output(SecurityLevel(SecurityLevel::Public), *Raw,
                           &AdChannel);
    std::printf("attempt to write the raw location publicly: %s\n",
                Leak.ok() ? "ALLOWED (bug!)" : Leak.error().str().c_str());
  }
  return 0;
}
