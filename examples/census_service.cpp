//===- examples/census_service.cpp - Extensions working together ----------===//
//
// A census-bureau disclosure service exercising the three paper
// extensions this library implements beyond the core system:
//
//   * multi-output classifiers (§5.1): a three-way income-band question
//     is declassified with one verified ind. set per band;
//   * entropy policies and QIF measures (§8): the release policy demands
//     the attacker retain > 12 bits of min-entropy about any respondent,
//     and the service reports certified Shannon/guessing-entropy brackets
//     after every release;
//   * over-approximation tracking (§3's unexplored dual): an exposure
//     monitor certifies how far an attacker has *provably* narrowed each
//     respondent, alerting when a respondent becomes too exposed.
//
// Build & run:  ./build/examples/census_service
//
//===----------------------------------------------------------------------===//

#include "core/AnosySession.h"
#include "core/OverMonitor.h"
#include "core/Qif.h"
#include "expr/Parser.h"

#include <cstdio>

using namespace anosy;

namespace {

const char *CensusModule = R"(
# One census respondent: age, annual income (thousands), household size.
secret Respondent {
  age:       int[18, 99],
  income:    int[0, 500],
  household: int[1, 12]
}

# Is the respondent in a child-rearing-age household of 3+?
query family_stage = age >= 25 && age <= 45 && household >= 3

# Does the respondent qualify for the senior rebate?
query senior_rebate = age >= 67

# Income band released to the statistics consumer: 0 = low, 1 = middle,
# 2 = high.
classify income_band = if income < 40 then 0
                       else if income < 120 then 1 else 2
)";

} // namespace

int main() {
  auto M = parseModule(CensusModule);
  if (!M) {
    std::fprintf(stderr, "%s\n", M.error().str().c_str());
    return 1;
  }
  const Schema &S = M->schema();
  BigCount Domain = S.totalSize();
  std::printf("census schema: %s\n%s respondent profiles possible "
              "(%.1f bits)\n\n",
              S.str().c_str(), Domain.sci().c_str(),
              knowledgeMeasures(Domain).ShannonBits);

  // The release policy: every posterior must keep > 12 bits of
  // min-entropy (> 4096 candidate profiles).
  SessionOptions Options;
  Options.PowersetSize = 4;
  auto Session = AnosySession<PowerBox>::create(
      M.value(), minEntropyPolicy<PowerBox>(12.0), Options);
  if (!Session) {
    std::fprintf(stderr, "%s\n", Session.error().str().c_str());
    return 1;
  }

  // The exposure monitor tracks over-approximations of the same queries
  // (synthesized separately; the monitor needs Over ind. sets).
  OverKnowledgeMonitor<Box> Monitor(S, /*AlertThreshold=*/200000);
  for (const QueryDef &Q : M->queries()) {
    auto Sy = Synthesizer::create(S, Q.Body);
    auto Over = Sy->synthesizeInterval(ApproxKind::Over);
    if (!Over) {
      std::fprintf(stderr, "%s\n", Over.error().str().c_str());
      return 1;
    }
    QueryInfo<Box> Info;
    Info.Name = Q.Name;
    Info.QueryExpr = Q.Body;
    Info.Ind = Over.takeValue();
    Info.Kind = ApproxKind::Over;
    Monitor.registerQuery(std::move(Info));
  }

  Point Respondent{34, 85, 4}; // hidden from the consumer
  std::printf("processing disclosure requests for one respondent...\n\n");

  // 1. The classifier release.
  auto Band = Session->downgradeClassifier(Respondent, "income_band");
  if (!Band) {
    std::printf("income_band: %s\n", Band.error().str().c_str());
  } else {
    BigCount Under = Session->tracker().knowledgeFor(Respondent).size();
    std::printf("income_band -> %lld\n", static_cast<long long>(*Band));
    std::printf("  certified attacker uncertainty: %s\n",
                measureBounds(Under, Monitor.certifiedCandidates(Respondent))
                    .str()
                    .c_str());
  }

  // 2. Boolean releases, with the monitor observing what went public.
  for (const char *Name : {"family_stage", "senior_rebate"}) {
    auto R = Session->downgrade(Respondent, Name);
    if (!R) {
      std::printf("%s: %s\n", Name, R.error().str().c_str());
      continue;
    }
    if (auto Obs = Monitor.observe(Respondent, Name, *R); !Obs.ok())
      std::printf("  (monitor: %s)\n", Obs.error().str().c_str());
    BigCount Under = Session->tracker().knowledgeFor(Respondent).size();
    BigCount Over = Monitor.certifiedCandidates(Respondent);
    LeakageBounds Leak = leakageBounds(Domain, Under, Over);
    std::printf("%s -> %s\n", Name, *R ? "true" : "false");
    std::printf("  leaked so far: between %.2f and %.2f bits\n",
                Leak.LowerBits, Leak.UpperBits);
  }

  if (!Monitor.alerts().empty()) {
    std::printf("\nexposure alerts:\n");
    for (const ExposureAlert &A : Monitor.alerts())
      std::printf("  after %s: attacker has provably narrowed the "
                  "respondent to <= %s profiles\n",
                  A.QueryName.c_str(), A.RemainingCandidates.str().c_str());
  } else {
    std::printf("\nno exposure alerts: the attacker cannot be proven to "
                "have narrowed the respondent below the alert "
                "threshold.\n");
  }
  return 0;
}
