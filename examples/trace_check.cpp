//===- examples/trace_check.cpp - Chrome trace document validator ---------===//
//
// The CI-facing end of the observability subsystem (DESIGN.md §8):
// validates that a file produced by `anosy_cli --trace-out` is a
// well-formed Chrome trace_event document (the structural rules of
// tests/obs/trace_event.schema.json, implemented by
// obs::validateChromeTrace) and, optionally, that named spans appear.
//
//   trace_check trace.json [--require SPAN]... [--list]
//
// Exit 0 when the document validates and every required span is present;
// 1 on a validation failure or a missing span; 2 on bad usage.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceValidate.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace anosy;

int main(int Argc, char **Argv) {
  std::string Path;
  std::vector<std::string> Required;
  bool List = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--require") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--require needs a span name\n");
        return 2;
      }
      Required.push_back(Argv[++I]);
    } else if (Arg.rfind("--require=", 0) == 0) {
      Required.push_back(Arg.substr(std::strlen("--require=")));
    } else if (Arg == "--list") {
      List = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s trace.json [--require SPAN]... [--list]\n",
                   Argv[0]);
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      std::fprintf(stderr, "only one trace file, got '%s' and '%s'\n",
                   Path.c_str(), Arg.c_str());
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "usage: %s trace.json [--require SPAN]... [--list]\n",
                 Argv[0]);
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  auto Spans = obs::validateChromeTrace(Buf.str());
  if (!Spans) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                 Spans.error().str().c_str());
    return 1;
  }
  std::printf("%s: valid Chrome trace, %zu span event%s\n", Path.c_str(),
              Spans->size(), Spans->size() == 1 ? "" : "s");
  if (List)
    for (const std::string &Name : *Spans)
      std::printf("  %s\n", Name.c_str());

  int Missing = 0;
  for (const std::string &Want : Required) {
    bool Found = false;
    for (const std::string &Name : *Spans)
      if (Name == Want) {
        Found = true;
        break;
      }
    if (!Found) {
      std::fprintf(stderr, "missing required span: %s\n", Want.c_str());
      ++Missing;
    }
  }
  return Missing == 0 ? 0 : 1;
}
