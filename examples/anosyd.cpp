//===- examples/anosyd.cpp - The anosy monitor daemon ---------------------===//
//
// The long-lived serving face of src/service (DESIGN.md §10): a
// multi-tenant monitor daemon with admission control, bounded-queue
// backpressure, deadlines, crash recovery, and graceful SIGTERM drain.
//
//   anosyd [--data-dir DIR] [--cache-dir DIR] [--queue-capacity N]
//          [--workers N] [--deadline-ms N] [--max-inflight N]
//          [--max-kb-bytes N] [--metrics-out FILE] [--fault-inject SPEC]
//          [--relational off|auto|on]
//       Serve mode: a line protocol on stdin, one JSON response per line
//       on stdout:
//         register <tenant> <module-path> [min-size]
//         downgrade <tenant> <query> <v1> [v2 ...]
//         classify <tenant> <classifier> <v1> [v2 ...]
//         flush <tenant>
//         metrics          (dump Prometheus text to stdout)
//         stats            (dump daemon counters as JSON)
//         quit             (drain and exit)
//       SIGTERM/SIGINT triggers the same graceful drain: intake stops,
//       the backlog runs dry, every tenant KB is flushed atomically.
//
//   anosyd --soak [--tenants N] [--sessions N] [--steps N] [--sps X]
//          [--burst X] [--seed N] ... (plus the serve-mode flags)
//       Self-drive mode for CI and overload experiments: starts the
//       daemon, runs the multi-tenant load harness against it
//       (oracle-checked), drains, and exits 0 iff no contract violation
//       was observed. --burst 2 is the ISSUE-7 overload shape: bursts of
//       2x queue capacity with workers paused, so shedding is
//       deterministic.
//
// Exit is 0 whenever the drain completed — including drains forced by
// SIGTERM mid-soak — and nonzero on contract violations or startup
// failures.
//
//===----------------------------------------------------------------------===//

#include "compile/CompiledEval.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "service/LoadHarness.h"
#include "support/FaultInjection.h"
#include "support/ParseNum.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace anosy;
using namespace anosy::service;

namespace {

/// SIGTERM/SIGINT latch; polled by both loops (async-signal-safe).
volatile std::sig_atomic_t StopRequested = 0;

void onStopSignal(int) { StopRequested = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: anosyd [--data-dir DIR] [--cache-dir DIR]\n"
      "              [--queue-capacity N] [--workers N]\n"
      "              [--deadline-ms N] [--max-inflight N]\n"
      "              [--max-kb-bytes N] [--metrics-out FILE]\n"
      "              [--compiled-eval off|on|auto]\n"
      "              [--fault-inject SPEC] [--relational off|auto|on]\n"
      "   or: anosyd --soak [--tenants N] [--sessions N] [--steps N]\n"
      "              [--sps X] [--burst X] [--seed N] (plus serve flags)\n"
      "serve-mode stdin protocol:\n"
      "  register <tenant> <module-path> [min-size]\n"
      "  downgrade <tenant> <query> <v1> [v2 ...]\n"
      "  classify <tenant> <classifier> <v1> [v2 ...]\n"
      "  flush <tenant> | metrics | stats | quit\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

std::string statsJson(const DaemonStats &S) {
  std::string Out = "{\"accepted\":" + std::to_string(S.Accepted);
  Out += ",\"shed\":" + std::to_string(S.Shed);
  Out += ",\"ok\":" + std::to_string(S.Ok);
  Out += ",\"refused\":" + std::to_string(S.Refused);
  Out += ",\"bottom\":" + std::to_string(S.Bottom);
  Out += ",\"deadline_expired\":" + std::to_string(S.DeadlineExpired);
  Out += ",\"errors\":" + std::to_string(S.Errors);
  Out += ",\"watchdog_aborts\":" + std::to_string(S.WatchdogAborts);
  Out += ",\"admit_skips\":" + std::to_string(S.AdmitSkips);
  Out += ",\"flushes\":" + std::to_string(S.Flushes);
  Out += ",\"flush_retries\":" + std::to_string(S.FlushRetries);
  Out += ",\"flush_failures\":" + std::to_string(S.FlushFailures);
  Out += ",\"cache_hits\":" + std::to_string(S.CacheHits);
  Out += ",\"cache_misses\":" + std::to_string(S.CacheMisses);
  Out += ",\"cache_stores\":" + std::to_string(S.CacheStores);
  Out += '}';
  return Out;
}

/// Serve mode: line protocol on stdin, one JSON line per response.
int serve(MonitorDaemon &Daemon, const std::string &MetricsOut) {
  std::string Line;
  while (!StopRequested && std::getline(std::cin, Line)) {
    std::istringstream Ss(Line);
    std::string Cmd;
    Ss >> Cmd;
    if (Cmd.empty())
      continue;
    if (Cmd == "quit")
      break;
    if (Cmd == "metrics") {
      std::fputs(obs::MetricsRegistry::global().renderPrometheus().c_str(),
                 stdout);
      std::fflush(stdout);
      continue;
    }
    if (Cmd == "stats") {
      std::printf("%s\n", statsJson(Daemon.stats()).c_str());
      std::fflush(stdout);
      continue;
    }

    ServiceRequest R;
    bool Parsed = true;
    if (Cmd == "register") {
      R.Kind = RequestKind::Register;
      std::string Path;
      Ss >> R.Tenant >> Path;
      int64_t MinSize = -1;
      if (Ss >> MinSize)
        R.MinSize = MinSize;
      if (R.Tenant.empty() || Path.empty() ||
          !readFile(Path, R.ModuleSource)) {
        std::printf("{\"id\":0,\"status\":\"error\",\"detail\":\"cannot "
                    "read module file\"}\n");
        std::fflush(stdout);
        continue;
      }
    } else if (Cmd == "downgrade" || Cmd == "classify") {
      R.Kind = Cmd == "downgrade" ? RequestKind::Downgrade
                                  : RequestKind::Classify;
      Ss >> R.Tenant >> R.Name;
      int64_t V;
      while (Ss >> V)
        R.Secret.push_back(V);
      Parsed = !R.Tenant.empty() && !R.Name.empty() && !R.Secret.empty();
    } else if (Cmd == "flush") {
      R.Kind = RequestKind::Flush;
      Ss >> R.Tenant;
      Parsed = !R.Tenant.empty();
    } else {
      Parsed = false;
    }
    if (!Parsed) {
      std::printf("{\"id\":0,\"status\":\"error\",\"detail\":\"bad "
                  "request line\"}\n");
      std::fflush(stdout);
      continue;
    }
    ServiceResponse Resp = Daemon.call(std::move(R));
    std::printf("%s\n", Resp.renderJson().c_str());
    std::fflush(stdout);
  }
  DrainReport Drain = Daemon.drain();
  std::fprintf(stderr,
               "anosyd: drained %llu queued requests, flushed %u tenants "
               "(%u failures) in %.3fs\n",
               static_cast<unsigned long long>(Drain.Drained),
               Drain.TenantsFlushed, Drain.FlushFailures, Drain.Seconds);
  if (!MetricsOut.empty())
    (void)obs::MetricsRegistry::global().writeFile(MetricsOut);
  return 0;
}

/// Self-drive soak for CI: generated multi-tenant load, oracle-checked,
/// then a graceful drain. SIGTERM mid-soak stops between waves.
int soak(MonitorDaemon &Daemon, const LoadOptions &LOpt,
         const std::string &MetricsOut) {
  LoadReport Rep = runLoad(Daemon, LOpt);
  DrainReport Drain = Daemon.drain();
  std::printf("%s\n", renderLoadReport(Rep).c_str());
  std::printf("%s\n", statsJson(Daemon.stats()).c_str());
  std::fprintf(stderr,
               "anosyd --soak: %llu steps, %llu admitted, %llu shed, "
               "%llu bottom, %llu mismatches; drained %llu, flushed %u\n",
               static_cast<unsigned long long>(Rep.Steps),
               static_cast<unsigned long long>(Rep.Admitted),
               static_cast<unsigned long long>(Rep.Shed),
               static_cast<unsigned long long>(Rep.Bottom),
               static_cast<unsigned long long>(Rep.Mismatches),
               static_cast<unsigned long long>(Drain.Drained),
               Drain.TenantsFlushed);
  for (const std::string &Msg : Rep.MismatchNotes)
    std::fprintf(stderr, "  %s\n", Msg.c_str());
  if (!MetricsOut.empty())
    (void)obs::MetricsRegistry::global().writeFile(MetricsOut);
  return Rep.Mismatches == 0 && Rep.TenantsFailed == 0 &&
                 Drain.FlushFailures == 0
             ? 0
             : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions DOpt;
  LoadOptions LOpt;
  bool SoakMode = false;
  std::string MetricsOut;
  std::string FaultSpec;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    auto NextU64 = [&](const char *Flag) -> uint64_t {
      const char *V = Next();
      auto N = V != nullptr ? parseUint64(V) : std::nullopt;
      if (!N) {
        std::fprintf(stderr, "error: invalid value for %s\n", Flag);
        std::exit(2);
      }
      return *N;
    };
    if (Arg == "--soak")
      SoakMode = true;
    else if (Arg == "--data-dir" && I + 1 < Argc)
      DOpt.DataDir = Argv[++I];
    else if (Arg == "--cache-dir" && I + 1 < Argc)
      DOpt.CacheDir = Argv[++I];
    else if (Arg == "--queue-capacity")
      DOpt.QueueCapacity = static_cast<size_t>(NextU64("--queue-capacity"));
    else if (Arg == "--workers")
      DOpt.Workers = static_cast<unsigned>(NextU64("--workers"));
    else if (Arg == "--deadline-ms")
      DOpt.DefaultDeadlineMs = NextU64("--deadline-ms");
    else if (Arg == "--max-inflight")
      DOpt.Quotas.MaxInFlight = static_cast<unsigned>(NextU64("--max-inflight"));
    else if (Arg == "--max-kb-bytes")
      DOpt.Quotas.MaxKbBytes = static_cast<size_t>(NextU64("--max-kb-bytes"));
    else if (Arg == "--compiled-eval" && I + 1 < Argc) {
      CompiledEvalMode M;
      if (!parseCompiledEvalMode(Argv[++I], M)) {
        std::fprintf(stderr, "bad --compiled-eval value '%s' (off|on|auto)\n",
                     Argv[I]);
        return usage();
      }
      setCompiledEvalMode(M);
    } else if (Arg.rfind("--compiled-eval=", 0) == 0) {
      CompiledEvalMode M;
      if (!parseCompiledEvalMode(Arg.substr(16), M)) {
        std::fprintf(stderr, "bad --compiled-eval value '%s' (off|on|auto)\n",
                     Arg.c_str() + 16);
        return usage();
      }
      setCompiledEvalMode(M);
    } else if (Arg == "--metrics-out" && I + 1 < Argc)
      MetricsOut = Argv[++I];
    else if (Arg == "--fault-inject" && I + 1 < Argc)
      FaultSpec = Argv[++I];
    else if (Arg == "--relational") {
      const char *V = Next();
      auto T = V != nullptr ? parseRelationalTier(V) : std::nullopt;
      if (!T) {
        std::fprintf(stderr,
                     "error: invalid value for --relational (off|auto|on)\n");
        return 2;
      }
      DOpt.Session.LintRelational = *T;
    }
    else if (Arg == "--tenants")
      LOpt.Tenants = static_cast<unsigned>(NextU64("--tenants"));
    else if (Arg == "--sessions")
      LOpt.Sessions = static_cast<unsigned>(NextU64("--sessions"));
    else if (Arg == "--steps")
      LOpt.StepsPerSession = static_cast<unsigned>(NextU64("--steps"));
    else if (Arg == "--seed")
      LOpt.Seed = NextU64("--seed");
    else if (Arg == "--sps" && I + 1 < Argc)
      LOpt.SessionsPerSecond = std::atof(Argv[++I]);
    else if (Arg == "--burst" && I + 1 < Argc)
      LOpt.BurstFactor = std::atof(Argv[++I]);
    else
      return usage();
  }

  // sigaction without SA_RESTART: a SIGTERM that lands while serve() is
  // blocked reading stdin must interrupt the read (EINTR) so the loop
  // can fall through into the drain — std::signal on glibc restarts the
  // read and the daemon would hang until the next input line.
  struct sigaction Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sa_handler = onStopSignal;
  sigemptyset(&Sa.sa_mask);
  sigaction(SIGTERM, &Sa, nullptr);
  sigaction(SIGINT, &Sa, nullptr);

  if (!FaultSpec.empty()) {
    auto FC = faults::parseSpec(FaultSpec);
    if (!FC) {
      std::fprintf(stderr, "bad --fault-inject spec: %s\n",
                   FC.error().str().c_str());
      return 2;
    }
    faults::configure(*FC);
  } else {
    faults::initFromEnv();
  }
  obs::setEnabled(true);
  LOpt.StepDeadlineMs = DOpt.DefaultDeadlineMs;

  MonitorDaemon Daemon(DOpt);
  auto Recovered = Daemon.start();
  if (!Recovered) {
    std::fprintf(stderr, "anosyd: start failed: %s\n",
                 Recovered.error().str().c_str());
    return 1;
  }
  if (!Recovered->Tenants.empty())
    std::fprintf(stderr,
                 "anosyd: recovered %u tenants (%u failed, %u damaged "
                 "records) in %.3fs\n",
                 Recovered->TenantsRecovered, Recovered->TenantsFailed,
                 Recovered->DamagedRecords, Recovered->Seconds);

  return SoakMode ? soak(Daemon, LOpt, MetricsOut)
                  : serve(Daemon, MetricsOut);
}
